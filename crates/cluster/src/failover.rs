//! The `failover` scenario: replica crashes, log-replay recovery, and a
//! certifier leader kill, driven through the shared harness.
//!
//! Tashkent+ argues the memory-aware balancer must stay correct under
//! replica loss and certifier failover (§3 recovery, §4.2.1 fault
//! tolerance). This scenario injects both failure classes mid-run as
//! ordinary [`Ev`] events and measures whether throughput recovers:
//!
//! 1. after a steady-state quarter of the measured window, `crashes`
//!    replicas fail simultaneously — cold caches, in-flight transactions
//!    dropped, their clients retrying on the survivors;
//! 2. one downtime-eighth later they recover, replaying the certifier's
//!    persistent log and rejoining dispatch cold;
//! 3. optionally, past the window midpoint the certifier leader is killed
//!    and a backup takes over after the paper's 200 ms election delay.
//!
//! Every timing is derived from [`ScenarioKnobs`], so the same recipe
//! serves smoke tests, the `fig_failover` bench target, and the example.
//! Because the injections are plain events, both drivers observe identical
//! failure timing — the cross-driver equivalence suite runs this scenario
//! too, fault log included.

use tashkent_sim::SimTime;
use tashkent_workloads::tpcw::{self, TpcwScale};

use crate::config::PolicySpec;
use crate::events::Ev;
use crate::experiment::{Experiment, Scenario, ScenarioKnobs};

/// When each fault of a [`Failover`] run fires, in whole simulated seconds
/// — shared between the experiment builder, the tests asserting recovery,
/// and the bench target annotating its time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverSchedule {
    /// Replica crash instant.
    pub crash_at_secs: u64,
    /// Replica recovery instant.
    pub recover_at_secs: u64,
    /// Certifier leader kill instant (only fired when the scenario asks
    /// for it).
    pub leader_kill_at_secs: u64,
}

/// Replica crash + recovery (and optional certifier leader kill) on the
/// TPC-W ordering mix — the update-heavy mix, so recovery has a real log
/// to replay.
pub struct Failover {
    /// Database scale.
    pub scale: TpcwScale,
    /// Replicas crashed simultaneously; clamped to leave at least one
    /// survivor for dispatch. The highest-indexed replicas crash first.
    pub crashes: usize,
    /// Also kill the certifier leader after recovery settles.
    pub kill_certifier_leader: bool,
}

impl Default for Failover {
    fn default() -> Self {
        Failover {
            scale: TpcwScale::Small,
            crashes: 1,
            kill_certifier_leader: true,
        }
    }
}

impl Failover {
    /// The fault schedule these knobs imply: crash after a steady-state
    /// quarter of the measured window, recover one downtime-eighth later,
    /// kill the certifier leader past the midpoint.
    pub fn schedule(knobs: &ScenarioKnobs) -> FailoverSchedule {
        let crash_at_secs = knobs.warmup_secs + knobs.measured_secs / 4;
        FailoverSchedule {
            crash_at_secs,
            recover_at_secs: crash_at_secs + (knobs.measured_secs / 8).max(1),
            leader_kill_at_secs: knobs.warmup_secs + (5 * knobs.measured_secs) / 8,
        }
    }

    /// The replica indices this scenario crashes at the given scale: the
    /// tail of the cluster, always leaving at least one survivor.
    pub fn victims(&self, replicas: usize) -> Vec<usize> {
        let n = self.crashes.min(replicas.saturating_sub(1));
        (0..n).map(|i| replicas - 1 - i).collect()
    }
}

impl Scenario for Failover {
    fn name(&self) -> &'static str {
        "failover"
    }

    fn summary(&self) -> &'static str {
        "replica crash + log-replay recovery, certifier leader kill; throughput must recover"
    }

    fn experiment(&self, knobs: &ScenarioKnobs) -> Experiment {
        let (workload, mix) = tpcw::workload_with_mix(self.scale, "ordering");
        let config = knobs.config(PolicySpec::malb_sc());
        let sched = Self::schedule(knobs);
        let mut exp = Experiment::new(config, workload, mix)
            .with_window(knobs.warmup_secs, knobs.measured_secs)
            .with_driver(knobs.driver);
        for replica in self.victims(knobs.replicas) {
            exp = exp
                .with_injection(
                    SimTime::from_secs(sched.crash_at_secs),
                    Ev::ReplicaCrash { replica },
                )
                .with_injection(
                    SimTime::from_secs(sched.recover_at_secs),
                    Ev::ReplicaRecover { replica },
                );
        }
        if self.kill_certifier_leader {
            exp = exp.with_injection(
                SimTime::from_secs(sched.leader_kill_at_secs),
                Ev::CertifierKill {
                    group: 0,
                    member: 0,
                },
            );
        }
        exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FaultKind;

    #[test]
    fn schedule_orders_crash_recover_kill() {
        let knobs = ScenarioKnobs::smoke();
        let s = Failover::schedule(&knobs);
        assert!(knobs.warmup_secs < s.crash_at_secs);
        assert!(s.crash_at_secs < s.recover_at_secs);
        assert!(s.recover_at_secs < s.leader_kill_at_secs);
        assert!(s.leader_kill_at_secs < knobs.warmup_secs + knobs.measured_secs);
    }

    #[test]
    fn victims_leave_a_survivor() {
        let f = Failover {
            crashes: 10,
            ..Failover::default()
        };
        assert_eq!(f.victims(3), vec![2, 1]);
        assert_eq!(Failover::default().victims(2), vec![1]);
        assert_eq!(Failover::default().victims(1), Vec::<usize>::new());
    }

    #[test]
    fn experiment_injects_the_full_fault_plan() {
        let knobs = ScenarioKnobs::smoke();
        let exp = Failover::default().experiment(&knobs);
        assert_eq!(exp.injections.len(), 3, "crash + recover + leader kill");
        assert!(matches!(
            exp.injections[0].1,
            Ev::ReplicaCrash { replica } if replica == knobs.replicas - 1
        ));
        let no_kill = Failover {
            kill_certifier_leader: false,
            ..Failover::default()
        }
        .experiment(&knobs);
        assert_eq!(no_kill.injections.len(), 2);
    }

    #[test]
    fn smoke_run_records_faults_and_keeps_committing() {
        let knobs = ScenarioKnobs::smoke();
        let sched = Failover::schedule(&knobs);
        let r = Failover::default()
            .run(&knobs)
            .expect("failover run completes");
        assert!(r.committed > 0, "cluster kept serving through the crash");
        let kinds: Vec<FaultKind> = r.faults.iter().map(|f| f.kind).collect();
        let victim = knobs.replicas - 1;
        assert_eq!(
            kinds,
            vec![
                FaultKind::ReplicaCrash(victim),
                FaultKind::ReplicaRecover(victim),
                FaultKind::CertifierFailover {
                    group: 0,
                    leader: 1
                },
            ]
        );
        assert_eq!(
            r.faults[0].at,
            SimTime::from_secs(sched.crash_at_secs),
            "crash timing is part of the result"
        );
        assert_eq!(r.faults[1].at, SimTime::from_secs(sched.recover_at_secs));
    }
}
