//! Per-component event handlers.
//!
//! The cluster event loop ([`crate::world::World`]) owns three component
//! handlers and reduces every [`crate::events::Ev`] arm to a thin delegate:
//!
//! * [`ClusterNode`] — a replica node inside the cluster: admission,
//!   execution stepping, slot recycling, and periodic maintenance;
//! * [`CertifierLink`] — the round-trip to the certifier: certification,
//!   the commit/abort response path, and propagation pulls;
//! * [`BalancerCtl`] — dispatch plus the `LbTick` reconfiguration loop that
//!   applies re-allocations and installs update filters.
//!
//! Components own their state and translate outcomes into scheduled events;
//! the `World` keeps only cross-cutting bookkeeping (clients, transaction
//! metadata, metrics). This is the seam future runtimes (async, threaded,
//! partial replication) plug into: a different driver can own the same
//! components and schedule their events differently.

mod balancer_ctl;
mod certifier_link;
mod node;

pub use balancer_ctl::{BalancerCtl, HealthTransition, ReplicaHealth};
pub use certifier_link::CertifierLink;
pub use node::ClusterNode;
