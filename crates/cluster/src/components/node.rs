//! A replica node wired into the cluster event loop.

use std::sync::Arc;

use tashkent_engine::{Snapshot, TxnExecutor, TxnId, Version};
use tashkent_replica::{LoadReport, ReplicaNode, StepOutcome, UpdateFilter};
use tashkent_sim::{EventQueue, SimTime};

use crate::events::Ev;
use crate::placement::CertMap;
use crate::trace::{TraceData, TraceEvent};

/// Wraps a [`ReplicaNode`] with its cluster identity and network position,
/// translating execution outcomes into scheduled events.
pub struct ClusterNode {
    id: usize,
    node: ReplicaNode,
    lan_hop_us: u64,
    up: bool,
    /// Under sharded certification, the relation→group map used to stamp
    /// each outgoing [`Ev::CertifySend`] with its touched-group bitmask.
    /// `None` under unified certification (mask 0).
    cert_map: Option<Arc<CertMap>>,
    /// Whether step events are recorded into `trace_buf`.
    trace_on: bool,
    /// Step trace events buffered node-side. Under the parallel driver the
    /// node is owned by a worker thread for the window, so `step_child`
    /// cannot reach the coordinator's `Tracer`; it buffers here and the
    /// driver replays the buffer at the step's exact sequential pop slot
    /// (the sequential driver drains it immediately after each step).
    trace_buf: Vec<TraceEvent>,
}

impl ClusterNode {
    /// Wraps `node` as replica `id`, `lan_hop_us` away from every other
    /// component.
    pub fn new(id: usize, node: ReplicaNode, lan_hop_us: u64) -> Self {
        ClusterNode {
            id,
            node,
            lan_hop_us,
            up: true,
            cert_map: None,
            trace_on: false,
            trace_buf: Vec::new(),
        }
    }

    /// Enables or disables step-event tracing on this node.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace_on = on;
    }

    /// Takes the buffered step trace events (empty when tracing is off —
    /// `std::mem::take` of an empty `Vec` does not allocate).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace_buf)
    }

    /// Installs the certification map (sharded mode); subsequent
    /// certification requests carry its group bitmask.
    pub fn set_cert_map(&mut self, map: Arc<CertMap>) {
        self.cert_map = Some(map);
    }

    /// Replica index within the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the replica is serving (not crashed).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Crashes the replica: cold cache, in-flight work dropped, admission
    /// queue drained. The cluster state sweeps its own transaction metadata
    /// for orphans (the node's running set misses transactions awaiting
    /// certification), so the dropped list is discarded here.
    pub fn crash(&mut self) {
        self.up = false;
        self.node.crash();
    }

    /// Marks the replica up again. The durable prefix (its applied version)
    /// survives the crash; the caller replays the certifier log from there
    /// — the cache stays cold either way.
    pub fn mark_recovered(&mut self) {
        self.up = true;
    }

    /// The wrapped replica (tests and metrics).
    pub fn replica(&self) -> &ReplicaNode {
        &self.node
    }

    /// Mutable access for failure injection and recovery drivers.
    pub fn replica_mut(&mut self) -> &mut ReplicaNode {
        &mut self.node
    }

    /// A fresh transaction snapshot at the replica's applied version.
    pub fn snapshot(&self) -> Snapshot {
        self.node.snapshot()
    }

    /// Latest version applied on this replica.
    pub fn applied(&self) -> Version {
        self.node.applied()
    }

    /// Applies remote writesets; returns the completion time.
    pub fn apply_writesets(
        &mut self,
        now: SimTime,
        writesets: &[tashkent_certifier::CommittedWriteset],
    ) -> SimTime {
        self.node.apply_writesets(now, writesets)
    }

    /// Commits a locally-executed update at `version`.
    pub fn commit_local(&mut self, version: Version) {
        self.node.commit_local(version)
    }

    /// Re-replication backfill (partial replication): re-applies the log
    /// items touching `rels` so this replica can join their holder set;
    /// returns the completion time.
    pub fn backfill_writesets(
        &mut self,
        now: SimTime,
        writesets: &[tashkent_certifier::CommittedWriteset],
        rels: &std::collections::BTreeSet<tashkent_storage::RelationId>,
    ) -> SimTime {
        self.node.backfill_writesets(now, writesets, rels)
    }

    /// Installs an update filter (from the balancer's reconfiguration).
    pub fn set_filter(&mut self, filter: UpdateFilter) {
        self.node.set_filter(filter)
    }

    /// Offers a transaction to the Gatekeeper; when admitted, schedules its
    /// first execution step two LAN hops out (client → balancer → replica).
    pub fn submit(
        &mut self,
        now: SimTime,
        txn: TxnId,
        executor: TxnExecutor,
        queue: &mut EventQueue<Ev>,
    ) {
        debug_assert!(self.up, "balancer dispatched to a crashed replica");
        if self.node.submit(executor) {
            queue.schedule(
                now + 2 * self.lan_hop_us,
                Ev::StepTxn {
                    replica: self.id,
                    txn,
                },
            );
        }
        // If queued, the Gatekeeper will admit it when a slot frees.
    }

    /// Advances a transaction by one quantum and schedules what follows:
    /// another step, local completion, or the certifier round-trip. Stale
    /// steps (transactions a crash dropped) schedule nothing.
    pub fn on_step(&mut self, now: SimTime, txn: TxnId, queue: &mut EventQueue<Ev>) {
        if let Some((at, ev)) = self.step_child(now, txn) {
            queue.schedule(at, ev);
        }
    }

    /// Advances a transaction by one quantum and returns the single
    /// follow-up event instead of scheduling it, or `None` for a *stale*
    /// step — one whose transaction a crash dropped (its step event was
    /// already queued when the replica went down).
    ///
    /// This is the queue-free core of [`ClusterNode::on_step`]: the parallel
    /// driver runs it on worker threads (each worker owns the node for the
    /// window) and merges the produced event streams back into the shared
    /// queue deterministically. Returning `None` for stale steps keeps the
    /// method total, so both drivers skip them identically.
    pub fn step_child(&mut self, now: SimTime, txn: TxnId) -> Option<(SimTime, Ev)> {
        if !self.node.is_running(txn) {
            return None;
        }
        let replica = self.id;
        let (outcome, ws_bytes, child) = match self.node.step(txn, now) {
            StepOutcome::Busy(t) => ("exec", 0, (t, Ev::StepTxn { replica, txn })),
            StepOutcome::Done(t) => (
                "done",
                0,
                (
                    t,
                    Ev::TxnComplete {
                        replica,
                        txn,
                        committed: true,
                    },
                ),
            ),
            StepOutcome::ReadyToCommit(t, ws) => {
                let groups = self.cert_map.as_ref().map_or(0, |m| m.mask_for(&ws));
                let bytes = ws.bytes();
                (
                    "cert",
                    bytes,
                    (
                        t + self.lan_hop_us,
                        Ev::CertifySend {
                            replica,
                            txn,
                            ws,
                            groups,
                        },
                    ),
                )
            }
        };
        if self.trace_on {
            self.trace_buf.push(TraceEvent {
                at: now,
                data: TraceData::Step {
                    txn: txn.0,
                    replica,
                    outcome,
                    next_at: child.0.as_micros(),
                    ws_bytes,
                },
            });
        }
        Some(child)
    }

    /// Frees the Gatekeeper slot after a completion; a queued transaction
    /// may start immediately.
    pub fn on_finish(&mut self, now: SimTime, committed: bool, queue: &mut EventQueue<Ev>) {
        if let Some(next) = self.node.finish(committed) {
            queue.schedule(
                now,
                Ev::StepTxn {
                    replica: self.id,
                    txn: next,
                },
            );
        }
    }

    /// Runs the background writer and other periodic replica work.
    pub fn on_maintenance(&mut self, now: SimTime) {
        self.node.maintenance(now);
    }

    /// Samples the load daemon (smoothed CPU/disk utilization).
    pub fn sample_load(&mut self, now: SimTime) -> LoadReport {
        self.node.sample_load(now)
    }
}
