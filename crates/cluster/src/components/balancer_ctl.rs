//! Dispatch and the `LbTick` reconfiguration loop.

use tashkent_core::{LoadBalancer, ReconfigAction, ReplicaId, ResourceLoad, WorkingSetEstimator};
use tashkent_engine::TxnTypeId;
use tashkent_replica::UpdateFilter;
use tashkent_sim::{EventQueue, SimTime};
use tashkent_workloads::{Mix, Workload};

use crate::config::{ClusterConfig, PolicySpec};
use crate::events::Ev;

/// Interval between balancer rebalance ticks.
const LB_TICK_US: u64 = 1_000_000;

/// What the balancer's failure detector currently believes about a replica.
///
/// Driven purely by heartbeat responses — never by oracle crash knowledge:
///
/// ```text
///        misses ≥ suspect_misses          misses ≥ dead_misses
///  Live ───────────────────────▶ Suspected ─────────────────▶ Dead
///   ▲                               │                          │
///   └───────── heartbeat answered ──┴──────────────────────────┘
/// ```
///
/// `Suspected` removes the replica from dispatch and retries its in-flight
/// transactions on survivors, but defers re-replication; only `Dead`
/// triggers backfill. A replica that answers again from either state
/// returns to `Live` (a *trust* transition) — a false suspicion costs a
/// filter-widen, not a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaHealth {
    /// Answering heartbeats; eligible for dispatch.
    #[default]
    Live,
    /// Missed `suspect_misses` consecutive heartbeats: out of dispatch,
    /// in-flight work retried elsewhere, re-replication deferred.
    Suspected,
    /// Missed `dead_misses` consecutive heartbeats: confirmed dead,
    /// re-replication of under-copied groups proceeds.
    Dead,
}

/// One state-machine transition produced by a heartbeat round, in replica
/// order (deterministic: the round probes replicas 0..n).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// A heartbeat went unanswered but the replica is not (yet) suspected.
    Miss {
        /// The unresponsive replica.
        replica: usize,
        /// Consecutive misses so far.
        misses: u32,
    },
    /// The replica crossed the suspicion threshold this round.
    Suspected {
        /// The newly suspected replica.
        replica: usize,
        /// Consecutive misses at the transition.
        misses: u32,
    },
    /// The replica crossed the dead threshold this round.
    Dead {
        /// The replica confirmed dead.
        replica: usize,
    },
    /// A non-`Live` replica answered again.
    Trusted {
        /// The replica restored to `Live`.
        replica: usize,
        /// Whether it had been declared `Dead` (the caller then shrinks
        /// over-replicated groups; a mere suspicion needs no placement
        /// work at all).
        was_dead: bool,
    },
}

/// Wraps the [`LoadBalancer`]: dispatch decisions, load reports, the
/// periodic reconfiguration tick that applies replica moves and installs
/// update filters on the affected nodes, and — when the heartbeat detector
/// is enabled — the per-replica `Live → Suspected → Dead` accrual state
/// machine.
pub struct BalancerCtl {
    lb: LoadBalancer,
    /// Detector belief per replica (all `Live` until heartbeats miss).
    health: Vec<ReplicaHealth>,
    /// Consecutive missed heartbeats per replica.
    misses: Vec<u32>,
    suspect_misses: u32,
    dead_misses: u32,
}

impl BalancerCtl {
    /// Builds the balancer for a config, estimating working sets for MALB
    /// from the active mix's transaction types via `EXPLAIN` + catalog
    /// metadata — exactly the paper's information channel (§4.2.2).
    pub fn build(config: &ClusterConfig, workload: &Workload, mix: &Mix) -> Self {
        let lb = match config.policy {
            PolicySpec::RoundRobin => LoadBalancer::round_robin(config.replicas),
            PolicySpec::LeastConnections => LoadBalancer::least_connections(config.replicas),
            PolicySpec::Lard => LoadBalancer::lard(config.replicas, config.lard),
            PolicySpec::Malb { .. } => {
                let estimator = WorkingSetEstimator::new(&workload.catalog);
                let sets = mix
                    .active_types()
                    .iter()
                    .map(|t| estimator.estimate(*t, &workload.explain(*t)))
                    .collect();
                let malb_cfg = config.malb_config().expect("policy is MALB");
                LoadBalancer::malb(config.replicas, sets, malb_cfg)
            }
        };
        BalancerCtl {
            lb,
            health: vec![ReplicaHealth::Live; config.replicas],
            misses: vec![0; config.replicas],
            // dead_misses must exceed suspect_misses for the deferral
            // window between suspicion and re-replication to exist.
            suspect_misses: config.suspect_misses.max(1),
            dead_misses: config.dead_misses.max(config.suspect_misses.max(1) + 1),
        }
    }

    /// The wrapped balancer (tests and metrics).
    pub fn inner(&self) -> &LoadBalancer {
        &self.lb
    }

    /// Picks the replica for a new transaction of `txn_type`.
    pub fn dispatch(&mut self, txn_type: TxnTypeId) -> ReplicaId {
        self.lb.dispatch(txn_type)
    }

    /// Installs (or clears) partial-replication eligibility masks: dispatch
    /// then routes each transaction type only to replicas holding its whole
    /// relation group, and MALB allocation weighs only resident replicas.
    pub fn set_type_eligibility(&mut self, masks: Option<Vec<Vec<bool>>>) {
        self.lb.set_type_eligibility(masks)
    }

    /// Notes a completion on `replica` (connection counting).
    pub fn complete(&mut self, replica: ReplicaId) {
        self.lb.complete(replica)
    }

    /// Feeds a load-daemon sample into the balancer.
    pub fn report(&mut self, replica: ReplicaId, load: ResourceLoad) {
        self.lb.report(replica, load)
    }

    /// Freezes the allocation (static-configuration baseline).
    pub fn freeze(&mut self) {
        self.lb.freeze()
    }

    /// Marks a replica dead: dispatch and MALB allocation route around it.
    pub fn replica_failed(&mut self, replica: ReplicaId) {
        self.lb.replica_failed(replica)
    }

    /// Marks a replica alive again after recovery; it rejoins dispatch.
    pub fn replica_recovered(&mut self, replica: ReplicaId) {
        self.lb.replica_recovered(replica)
    }

    /// The detector's current belief about `replica` (always `Live` when
    /// the detector is disabled — no heartbeat rounds ever run).
    pub fn health(&self, replica: usize) -> ReplicaHealth {
        self.health[replica]
    }

    /// Feeds one heartbeat round into the accrual counters: `reachable[r]`
    /// is whether replica `r`'s ping was answered (physically up, no
    /// partition on the control link, not mid-replay). Returns the state
    /// transitions in replica order; the caller applies their cluster-side
    /// consequences (eligibility masks, orphan sweeps, re-replication) so
    /// that — with the detector on — those change *only* through here.
    pub fn observe_heartbeats(&mut self, reachable: &[bool]) -> Vec<HealthTransition> {
        let mut out = Vec::new();
        for (r, &ok) in reachable.iter().enumerate() {
            if ok {
                self.misses[r] = 0;
                if self.health[r] != ReplicaHealth::Live {
                    out.push(HealthTransition::Trusted {
                        replica: r,
                        was_dead: self.health[r] == ReplicaHealth::Dead,
                    });
                    self.health[r] = ReplicaHealth::Live;
                }
            } else {
                self.misses[r] = self.misses[r].saturating_add(1);
                let m = self.misses[r];
                match self.health[r] {
                    ReplicaHealth::Live if m >= self.suspect_misses => {
                        self.health[r] = ReplicaHealth::Suspected;
                        out.push(HealthTransition::Suspected {
                            replica: r,
                            misses: m,
                        });
                    }
                    ReplicaHealth::Suspected if m >= self.dead_misses => {
                        self.health[r] = ReplicaHealth::Dead;
                        out.push(HealthTransition::Dead { replica: r });
                    }
                    ReplicaHealth::Dead => {}
                    _ => out.push(HealthTransition::Miss {
                        replica: r,
                        misses: m,
                    }),
                }
            }
        }
        out
    }

    /// Runs one rebalance tick and schedules the next one; returns the
    /// update filters the reconfiguration wants installed, for the cluster
    /// state to apply to the affected nodes, and the number of MALB replica
    /// moves the tick performed (for the trace's `lb` instant events).
    pub fn on_tick(
        &mut self,
        now: SimTime,
        queue: &mut EventQueue<Ev>,
    ) -> (Vec<(ReplicaId, UpdateFilter)>, usize) {
        let mut filters = Vec::new();
        let mut moves = 0;
        for action in self.lb.tick(now) {
            match action {
                ReconfigAction::SetFilter { replica, tables } => {
                    let filter = match tables {
                        Some(t) => UpdateFilter::only(t),
                        None => UpdateFilter::all(),
                    };
                    filters.push((replica, filter));
                }
                ReconfigAction::Moved { .. } => moves += 1,
            }
        }
        queue.schedule(now + LB_TICK_US, Ev::LbTick);
        (filters, moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(replicas: usize, suspect: u32, dead: u32) -> BalancerCtl {
        BalancerCtl {
            lb: LoadBalancer::round_robin(replicas),
            health: vec![ReplicaHealth::Live; replicas],
            misses: vec![0; replicas],
            suspect_misses: suspect,
            dead_misses: dead,
        }
    }

    #[test]
    fn accrual_walks_live_suspected_dead() {
        let mut d = detector(2, 2, 4);
        let down = [false, true];
        assert_eq!(
            d.observe_heartbeats(&down),
            vec![HealthTransition::Miss {
                replica: 0,
                misses: 1
            }]
        );
        assert_eq!(
            d.observe_heartbeats(&down),
            vec![HealthTransition::Suspected {
                replica: 0,
                misses: 2
            }]
        );
        assert_eq!(d.health(0), ReplicaHealth::Suspected);
        // Below the dead threshold a suspected replica keeps missing.
        assert_eq!(
            d.observe_heartbeats(&down),
            vec![HealthTransition::Miss {
                replica: 0,
                misses: 3
            }]
        );
        assert_eq!(
            d.observe_heartbeats(&down),
            vec![HealthTransition::Dead { replica: 0 }]
        );
        assert_eq!(d.health(0), ReplicaHealth::Dead);
        // Dead stays dead quietly until it answers again.
        assert_eq!(d.observe_heartbeats(&down), vec![]);
        assert_eq!(d.health(1), ReplicaHealth::Live, "bystander untouched");
    }

    #[test]
    fn answering_restores_trust_from_either_state() {
        let mut d = detector(1, 1, 2);
        d.observe_heartbeats(&[false]);
        assert_eq!(d.health(0), ReplicaHealth::Suspected);
        // A false suspicion: one answered ping restores Live and reports
        // that no re-replication ever started (was_dead = false).
        assert_eq!(
            d.observe_heartbeats(&[true]),
            vec![HealthTransition::Trusted {
                replica: 0,
                was_dead: false
            }]
        );
        d.observe_heartbeats(&[false]);
        d.observe_heartbeats(&[false]);
        assert_eq!(d.health(0), ReplicaHealth::Dead);
        assert_eq!(
            d.observe_heartbeats(&[true]),
            vec![HealthTransition::Trusted {
                replica: 0,
                was_dead: true
            }]
        );
        assert_eq!(d.health(0), ReplicaHealth::Live);
        // Counters reset: the next miss starts the accrual from scratch.
        assert_eq!(
            d.observe_heartbeats(&[false]),
            vec![HealthTransition::Suspected {
                replica: 0,
                misses: 1
            }]
        );
    }
}
