//! Dispatch and the `LbTick` reconfiguration loop.

use tashkent_core::{LoadBalancer, ReconfigAction, ReplicaId, ResourceLoad, WorkingSetEstimator};
use tashkent_engine::TxnTypeId;
use tashkent_replica::UpdateFilter;
use tashkent_sim::{EventQueue, SimTime};
use tashkent_workloads::{Mix, Workload};

use crate::config::{ClusterConfig, PolicySpec};
use crate::events::Ev;

/// Interval between balancer rebalance ticks.
const LB_TICK_US: u64 = 1_000_000;

/// Wraps the [`LoadBalancer`]: dispatch decisions, load reports, and the
/// periodic reconfiguration tick that applies replica moves and installs
/// update filters on the affected nodes.
pub struct BalancerCtl {
    lb: LoadBalancer,
}

impl BalancerCtl {
    /// Builds the balancer for a config, estimating working sets for MALB
    /// from the active mix's transaction types via `EXPLAIN` + catalog
    /// metadata — exactly the paper's information channel (§4.2.2).
    pub fn build(config: &ClusterConfig, workload: &Workload, mix: &Mix) -> Self {
        let lb = match config.policy {
            PolicySpec::RoundRobin => LoadBalancer::round_robin(config.replicas),
            PolicySpec::LeastConnections => LoadBalancer::least_connections(config.replicas),
            PolicySpec::Lard => LoadBalancer::lard(config.replicas, config.lard),
            PolicySpec::Malb { .. } => {
                let estimator = WorkingSetEstimator::new(&workload.catalog);
                let sets = mix
                    .active_types()
                    .iter()
                    .map(|t| estimator.estimate(*t, &workload.explain(*t)))
                    .collect();
                let malb_cfg = config.malb_config().expect("policy is MALB");
                LoadBalancer::malb(config.replicas, sets, malb_cfg)
            }
        };
        BalancerCtl { lb }
    }

    /// The wrapped balancer (tests and metrics).
    pub fn inner(&self) -> &LoadBalancer {
        &self.lb
    }

    /// Picks the replica for a new transaction of `txn_type`.
    pub fn dispatch(&mut self, txn_type: TxnTypeId) -> ReplicaId {
        self.lb.dispatch(txn_type)
    }

    /// Installs (or clears) partial-replication eligibility masks: dispatch
    /// then routes each transaction type only to replicas holding its whole
    /// relation group, and MALB allocation weighs only resident replicas.
    pub fn set_type_eligibility(&mut self, masks: Option<Vec<Vec<bool>>>) {
        self.lb.set_type_eligibility(masks)
    }

    /// Notes a completion on `replica` (connection counting).
    pub fn complete(&mut self, replica: ReplicaId) {
        self.lb.complete(replica)
    }

    /// Feeds a load-daemon sample into the balancer.
    pub fn report(&mut self, replica: ReplicaId, load: ResourceLoad) {
        self.lb.report(replica, load)
    }

    /// Freezes the allocation (static-configuration baseline).
    pub fn freeze(&mut self) {
        self.lb.freeze()
    }

    /// Marks a replica dead: dispatch and MALB allocation route around it.
    pub fn replica_failed(&mut self, replica: ReplicaId) {
        self.lb.replica_failed(replica)
    }

    /// Marks a replica alive again after recovery; it rejoins dispatch.
    pub fn replica_recovered(&mut self, replica: ReplicaId) {
        self.lb.replica_recovered(replica)
    }

    /// Runs one rebalance tick and schedules the next one; returns the
    /// update filters the reconfiguration wants installed, for the cluster
    /// state to apply to the affected nodes, and the number of MALB replica
    /// moves the tick performed (for the trace's `lb` instant events).
    pub fn on_tick(
        &mut self,
        now: SimTime,
        queue: &mut EventQueue<Ev>,
    ) -> (Vec<(ReplicaId, UpdateFilter)>, usize) {
        let mut filters = Vec::new();
        let mut moves = 0;
        for action in self.lb.tick(now) {
            match action {
                ReconfigAction::SetFilter { replica, tables } => {
                    let filter = match tables {
                        Some(t) => UpdateFilter::only(t),
                        None => UpdateFilter::all(),
                    };
                    filters.push((replica, filter));
                }
                ReconfigAction::Moved { .. } => moves += 1,
            }
        }
        queue.schedule(now + LB_TICK_US, Ev::LbTick);
        (filters, moves)
    }
}
