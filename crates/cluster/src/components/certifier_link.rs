//! The replicas' round-trip to the certifier.

use std::collections::BTreeSet;

use tashkent_certifier::{
    Certifier, CertifierGroup, CertifierParams, CertifyOutcome, CommittedWriteset, GroupEvent,
    PropagationAction, PropagationPolicy,
};
use tashkent_engine::{TxnId, Version, Writeset, WS_HEADER_BYTES, WS_ITEM_BYTES};
use tashkent_sim::{EventQueue, SimTime};
use tashkent_storage::RelationId;

use crate::components::ClusterNode;
use crate::events::Ev;
use crate::placement::{PlacementMap, WS_TICK_BYTES};

/// Wraps the [`Certifier`] together with the propagation policy, the
/// leader/backup [`CertifierGroup`] (§4.4 fault tolerance), and the
/// per-replica contact bookkeeping it needs, handling both halves of the
/// certification round-trip plus the periodic propagation pulls.
///
/// Under partial replication the link is also the traffic gate: a committed
/// writeset's pages ship only to its holders; a non-holder receives a bare
/// version tick. The `sent`/`saved` byte counters measure exactly that
/// split (the node-side [`tashkent_replica::UpdateFilter`] then skips the
/// withheld items at zero cost, so behaviour and accounting agree).
pub struct CertifierLink {
    certifier: Certifier,
    group: CertifierGroup,
    /// Certification requests arriving before this instant wait for the
    /// newly-elected leader (set by a leader kill's failover delay).
    available_at: SimTime,
    propagation: PropagationPolicy,
    last_contact: Vec<SimTime>,
    lan_hop_us: u64,
    /// Writeset bytes actually shipped to replicas (holder items, headers,
    /// version ticks, backfill traffic).
    sent_bytes: u64,
    /// Writeset bytes withheld from non-holders — traffic saved vs full
    /// replication.
    saved_bytes: u64,
}

impl CertifierLink {
    /// Builds the link for `replicas` nodes, `lan_hop_us` away, fronted by
    /// the paper's leader-plus-two-backups certifier group.
    pub fn new(params: CertifierParams, replicas: usize, lan_hop_us: u64) -> Self {
        CertifierLink {
            certifier: Certifier::new(params),
            group: CertifierGroup::paper_default(),
            available_at: SimTime::ZERO,
            propagation: PropagationPolicy::default(),
            last_contact: vec![SimTime::ZERO; replicas],
            lan_hop_us,
            sent_bytes: 0,
            saved_bytes: 0,
        }
    }

    /// Cumulative propagation traffic `(shipped, saved)` in bytes: what was
    /// actually sent to replicas, and what partial replication withheld
    /// from non-holders. Saved is zero under full replication.
    pub fn propagation_bytes(&self) -> (u64, u64) {
        (self.sent_bytes, self.saved_bytes)
    }

    /// Accounts the delivery of `pending` writesets to `replica`, adding to
    /// the shipped/saved counters (see [`delivery_bytes`]).
    fn account_delivery(
        &mut self,
        replica: usize,
        pending: &[CommittedWriteset],
        placement: Option<&PlacementMap>,
    ) {
        let (sent, saved) = delivery_bytes(replica, pending, placement);
        self.sent_bytes += sent;
        self.saved_bytes += saved;
    }

    /// The wrapped certifier (tests and metrics).
    pub fn inner(&self) -> &Certifier {
        &self.certifier
    }

    /// The certifier group's membership and leadership (tests and metrics).
    pub fn group(&self) -> &CertifierGroup {
        &self.group
    }

    /// Kills group member `member`. A leader kill elects a backup and
    /// delays certification responses until the new leader serves; the
    /// log — and thus every commit — survives (it is replicated to the
    /// backups).
    pub fn on_kill(&mut self, now: SimTime, member: usize) -> Option<GroupEvent> {
        let ev = self.group.kill(now, member);
        if let Some(GroupEvent::FailedOver { available_at, .. }) = ev {
            self.available_at = self.available_at.max(available_at);
        }
        ev
    }

    /// Head of the global commit order.
    pub fn version(&self) -> Version {
        self.certifier.version()
    }

    /// Certifies an arriving writeset and schedules the response back to the
    /// origin replica: the commit version once durable, or an immediate
    /// conflict.
    pub fn on_send(
        &mut self,
        now: SimTime,
        replica: usize,
        txn: TxnId,
        ws: Writeset,
        queue: &mut EventQueue<Ev>,
    ) {
        if !self.group.is_available() {
            // Every member is dead: the service is gone, the request fails
            // at the client like a conflict (it will retry, then give up).
            queue.schedule(
                now + self.lan_hop_us,
                Ev::CertifyReturn {
                    replica,
                    txn,
                    version: None,
                },
            );
            return;
        }
        // A request landing in a failover gap waits for the new leader.
        let now = now.max(self.available_at);
        match self.certifier.certify(now, ws) {
            CertifyOutcome::Committed {
                version,
                durable_at,
            } => {
                queue.schedule(
                    durable_at + self.lan_hop_us,
                    Ev::CertifyReturn {
                        replica,
                        txn,
                        version: Some(version),
                    },
                );
            }
            CertifyOutcome::Conflict => {
                queue.schedule(
                    now + self.lan_hop_us,
                    Ev::CertifyReturn {
                        replica,
                        txn,
                        version: None,
                    },
                );
            }
        }
        self.last_contact[replica] = now;
    }

    /// The commit half of the response path: applies the intervening remote
    /// writesets on the origin replica, commits locally, and returns when
    /// the replica is done.
    ///
    /// A propagation pull may already have advanced the replica past this
    /// version (applying our own writeset as if remote — harmless, the pages
    /// are identical); the local commit only happens when the version is
    /// still ahead.
    pub fn on_return_commit(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        version: Version,
        placement: Option<&PlacementMap>,
    ) -> SimTime {
        if node.applied() >= version {
            return now;
        }
        let pending: Vec<CommittedWriteset> = self
            .certifier
            .writesets_since(node.applied())
            .iter()
            .filter(|cw| cw.version < version)
            .cloned()
            .collect();
        self.account_delivery(node.id(), &pending, placement);
        let t = node.apply_writesets(now, &pending);
        node.commit_local(version);
        t
    }

    /// Recovery catch-up (§3 standard recovery): replays onto `node` every
    /// writeset it missed from the certifier's persistent log, in commit
    /// order, and returns when the replay work completes. The node's cold
    /// cache pays the page reads back through its disk model. Under partial
    /// replication only held groups travel as pages — the rest of the log
    /// reaches the node as version ticks its filter skips for free.
    pub fn catch_up(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        placement: Option<&PlacementMap>,
    ) -> SimTime {
        let pending = self.certifier.writesets_since(node.applied());
        let done = if pending.is_empty() {
            now
        } else {
            let (sent, saved) = delivery_bytes(node.id(), pending, placement);
            let done = node.apply_writesets(now, pending);
            self.sent_bytes += sent;
            self.saved_bytes += saved;
            done
        };
        self.last_contact[node.id()] = now;
        done
    }

    /// Re-replication backfill (partial replication): ships the log's items
    /// for `rels` — versions up to the node's applied version; later ones
    /// arrive through normal propagation once its filter widens — and
    /// re-applies them so the node's pages for those relations are current.
    /// Returns when the backfill work completes.
    pub fn backfill(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        rels: &BTreeSet<RelationId>,
    ) -> SimTime {
        let upto =
            (node.applied().0 as usize).min(self.certifier.writesets_since(Version(0)).len());
        let before = node.replica().stats();
        let done = node.backfill_writesets(
            now,
            &self.certifier.writesets_since(Version(0))[..upto],
            rels,
        );
        // The node's backfill counters are the single source of truth for
        // what was actually re-applied; the shipped bytes derive from them.
        let after = node.replica().stats();
        let shipped_ws = after.writesets_backfilled - before.writesets_backfilled;
        let shipped_items = after.items_backfilled - before.items_backfilled;
        self.sent_bytes += shipped_ws * WS_HEADER_BYTES + shipped_items * WS_ITEM_BYTES;
        self.last_contact[node.id()] = now;
        done
    }

    /// Periodic propagation: pulls (or prods) pending writesets onto a
    /// replica per the paper's 500 ms / 25-commit rules.
    pub fn maintenance_pull(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        placement: Option<&PlacementMap>,
    ) {
        let action = self.propagation.decide(
            now,
            self.last_contact[node.id()],
            node.applied(),
            self.certifier.version(),
        );
        if action != PropagationAction::None {
            let pending = self.certifier.writesets_since(node.applied());
            if !pending.is_empty() {
                let (sent, saved) = delivery_bytes(node.id(), pending, placement);
                node.apply_writesets(now, pending);
                self.sent_bytes += sent;
                self.saved_bytes += saved;
                self.last_contact[node.id()] = now;
            }
        }
    }
}

/// The bytes delivering `pending` writesets to `replica` puts on the wire
/// `(shipped, saved)`: a replica holding at least one of a writeset's
/// relations receives the held items (header + per-item bytes); one holding
/// none of them receives only a version tick. Under full replication
/// (`placement` absent) everything ships and nothing is saved.
fn delivery_bytes(
    replica: usize,
    pending: &[CommittedWriteset],
    placement: Option<&PlacementMap>,
) -> (u64, u64) {
    let (mut sent, mut saved) = (0u64, 0u64);
    for cw in pending {
        let total = cw.writeset.items.len() as u64;
        let held = match placement {
            None => total,
            Some(p) => cw
                .writeset
                .items
                .iter()
                .filter(|i| p.holds(replica, i.rel))
                .count() as u64,
        };
        if total > 0 && held == 0 {
            sent += WS_TICK_BYTES;
            saved += cw.writeset.bytes() - WS_TICK_BYTES;
        } else {
            sent += WS_HEADER_BYTES + held * WS_ITEM_BYTES;
            saved += (total - held) * WS_ITEM_BYTES;
        }
    }
    (sent, saved)
}
