//! The replicas' round-trip to the certifier.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use tashkent_certifier::{
    CertShard, Certifier, CertifierGroup, CertifierParams, CertifyOutcome, CommittedWriteset,
    GroupEvent, PropagationAction, PropagationPolicy, ShardCheck,
};
use tashkent_engine::{TxnId, Version, Writeset, WS_HEADER_BYTES, WS_ITEM_BYTES};
use tashkent_sim::{EventQueue, SimTime};
use tashkent_storage::RelationId;

use crate::components::ClusterNode;
use crate::events::Ev;
use crate::placement::{CertMap, PlacementMap, WS_TICK_BYTES};
use crate::trace::{TraceData, Tracer};

/// A certification request parked while every member of a touched group is
/// dead — back-pressure instead of a spurious abort. Drained in arrival
/// order when a member restarts.
#[derive(Debug, Clone)]
struct WaitingCert {
    arrived: SimTime,
    replica: usize,
    txn: TxnId,
    ws: Writeset,
    groups: u64,
}

/// The sharded-certification engine: per-relation-group [`CertShard`]s for
/// conflict checks, per-group leader+backups membership, and the
/// coordinator-side decide state — the *global* total-order log, version
/// assignment, and each group's ascending list of global commit versions.
///
/// The check half of a single-group request (`CertShard::check`) is the
/// part a driver may lease to a pool worker; everything in this struct
/// beyond the shard slots is decide-side and never leaves the coordinator.
pub struct ShardedCert {
    map: Arc<CertMap>,
    params: CertifierParams,
    /// The global commit order; entry `i` has version `i + 1`. Propagation,
    /// recovery replay, and backfill all read this log, exactly as they
    /// read the unified certifier's.
    log: Vec<CommittedWriteset>,
    /// Per-group ascending global commit versions — the group-local order.
    /// `group_commits[g].len()` is group `g`'s `gseq` head; the embedding
    /// into the global order is monotone, which is what makes the
    /// group-local conflict probe exact (see `tashkent_certifier::sharded`).
    group_commits: Vec<Vec<u64>>,
    /// Leasable check state, one slot per group (`None` while a driver has
    /// the shard out at a pool worker).
    shards: Vec<Option<Box<CertShard>>>,
    /// Per-group leader/backups membership.
    groups: Vec<CertifierGroup>,
    /// Per-group queue-and-wait parking lot (all members dead).
    wait: Vec<VecDeque<WaitingCert>>,
    committed: u64,
    conflicts: u64,
    log_bytes: u64,
}

impl ShardedCert {
    fn new(params: CertifierParams, map: Arc<CertMap>) -> Self {
        let n = map.group_count();
        ShardedCert {
            map,
            params,
            log: Vec::new(),
            group_commits: vec![Vec::new(); n],
            shards: (0..n)
                .map(|_| Some(Box::new(CertShard::new(params))))
                .collect(),
            groups: (0..n).map(|_| CertifierGroup::paper_default()).collect(),
            wait: vec![VecDeque::new(); n],
            committed: 0,
            conflicts: 0,
            log_bytes: 0,
        }
    }

    /// Group `g`'s commits visible at `snapshot`: the number of entries in
    /// its ascending global-version list that are `<= snapshot` — the
    /// `gsnap` the group-local conflict probe runs against. Exact whenever
    /// `snapshot` is at or below the current global head, which holds both
    /// at handling time and at the parallel driver's window formation
    /// (snapshots are taken before their send event is scheduled).
    fn gsnap(&self, g: usize, snapshot: Version) -> u64 {
        self.group_commits[g].partition_point(|v| *v <= snapshot.0) as u64
    }

    /// The decide half of a single-group certification: global version
    /// assignment, log append, group-commit durability, and the response
    /// back to the origin replica. Returns the request's effective arrival
    /// time (for `last_contact`).
    #[allow(clippy::too_many_arguments)]
    fn decide_single(
        &mut self,
        g: usize,
        replica: usize,
        txn: TxnId,
        ws: Writeset,
        check: ShardCheck,
        lan_hop_us: u64,
        tracer: &mut Tracer,
        queue: &mut EventQueue<Ev>,
    ) -> SimTime {
        if !check.committed {
            self.conflicts += 1;
            tracer.emit(
                check.eff_now,
                TraceData::Certify {
                    txn: txn.0,
                    groups: 1 << g,
                    committed: false,
                    version: None,
                },
            );
            queue.schedule(
                check.eff_now + lan_hop_us,
                Ev::CertifyReturn {
                    replica,
                    txn,
                    version: None,
                },
            );
            return check.eff_now;
        }
        if ws.is_empty() {
            // Mirrors the unified certifier: an empty writeset commits at
            // the current global head, durable as soon as checked.
            tracer.emit(
                check.checked_at,
                TraceData::Certify {
                    txn: txn.0,
                    groups: 1 << g,
                    committed: true,
                    version: Some(self.log.len() as u64),
                },
            );
            queue.schedule(
                check.checked_at + lan_hop_us,
                Ev::CertifyReturn {
                    replica,
                    txn,
                    version: Some(Version(self.log.len() as u64)),
                },
            );
            return check.eff_now;
        }
        let version = Version(self.log.len() as u64 + 1);
        tracer.emit(
            check.checked_at,
            TraceData::Certify {
                txn: txn.0,
                groups: 1 << g,
                committed: true,
                version: Some(version.0),
            },
        );
        self.commit(
            &[g],
            version,
            ws,
            check.checked_at,
            replica,
            txn,
            lan_hop_us,
            queue,
        );
        check.eff_now
    }

    /// The cross-group atomic-commitment round: every touched group charges
    /// a vote (a conflict check on the items it owns), the decide waits for
    /// the slowest vote plus two LAN hops (vote collection + decision
    /// broadcast), and a commit installs into every touched group under one
    /// global version. Returns the effective arrival time.
    #[allow(clippy::too_many_arguments)]
    fn decide_cross(
        &mut self,
        mask: u64,
        replica: usize,
        txn: TxnId,
        ws: Writeset,
        now: SimTime,
        lan_hop_us: u64,
        tracer: &mut Tracer,
        queue: &mut EventQueue<Ev>,
    ) -> SimTime {
        let touched: Vec<usize> = group_bits(mask).collect();
        let eff_now = touched.iter().fold(now, |t, g| {
            t.max(
                self.shards[*g]
                    .as_ref()
                    .expect("cert shard leased to a driver")
                    .available_at(),
            )
        });
        // Votes: each group's check runs on its own shard queue, started at
        // the coordinated arrival time.
        let mut vote_done = SimTime::ZERO;
        let mut conflict = false;
        for &g in &touched {
            let gsnap = self.gsnap(g, ws.snapshot.version);
            let shard = self.shards[g]
                .as_mut()
                .expect("cert shard leased to a driver");
            let (_, checked_at) = shard.reserve_check(eff_now);
            vote_done = vote_done.max(checked_at);
            let map = &self.map;
            if shard.probe(
                ws.items.iter().filter(|i| map.group_of_rel(i.rel) == g),
                gsnap,
            ) {
                conflict = true;
            }
        }
        let decide_at = vote_done + 2 * lan_hop_us;
        if conflict {
            self.conflicts += 1;
            tracer.emit(
                decide_at,
                TraceData::Certify {
                    txn: txn.0,
                    groups: mask,
                    committed: false,
                    version: None,
                },
            );
            queue.schedule(
                decide_at + lan_hop_us,
                Ev::CertifyReturn {
                    replica,
                    txn,
                    version: None,
                },
            );
            return eff_now;
        }
        let version = Version(self.log.len() as u64 + 1);
        tracer.emit(
            decide_at,
            TraceData::Certify {
                txn: txn.0,
                groups: mask,
                committed: true,
                version: Some(version.0),
            },
        );
        self.commit(
            &touched, version, ws, decide_at, replica, txn, lan_hop_us, queue,
        );
        eff_now
    }

    /// Shared commit tail: installs the owned items into every touched
    /// group's shard, appends one entry to the global log and each touched
    /// group's version list, and schedules the durable response.
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &mut self,
        touched: &[usize],
        version: Version,
        ws: Writeset,
        commit_point: SimTime,
        replica: usize,
        txn: TxnId,
        lan_hop_us: u64,
        queue: &mut EventQueue<Ev>,
    ) {
        for &g in touched {
            if touched.len() > 1 {
                let map = &self.map;
                let shard = self.shards[g]
                    .as_mut()
                    .expect("cert shard leased to a driver");
                shard.install(ws.items.iter().filter(|i| map.group_of_rel(i.rel) == g));
            }
            // Single-group installs already happened inside the shard check.
            self.group_commits[g].push(version.0);
        }
        self.committed += 1;
        self.log_bytes += ws.bytes();
        self.log.push(CommittedWriteset {
            version,
            writeset: ws,
        });
        let w = self.params.group_window_us.max(1);
        let durable_at = SimTime::from_micros(
            commit_point.as_micros().div_ceil(w) * w + self.params.log_write_us,
        );
        queue.schedule(
            durable_at + lan_hop_us,
            Ev::CertifyReturn {
                replica,
                txn,
                version: Some(version),
            },
        );
    }
}

/// Iterator over the group indices set in a touched-groups bitmask.
fn group_bits(mask: u64) -> impl Iterator<Item = usize> {
    (0..64usize).filter(move |g| mask & (1 << g) != 0)
}

/// Wraps the certification engine — the unified [`Certifier`] or the
/// sharded per-group engine — together with the propagation policy, the
/// leader/backup [`CertifierGroup`]s (§4.4 fault tolerance), and the
/// per-replica contact bookkeeping, handling both halves of the
/// certification round-trip plus the periodic propagation pulls.
///
/// Under partial replication the link is also the traffic gate: a committed
/// writeset's pages ship only to its holders; a non-holder receives a bare
/// version tick. The `sent`/`saved` byte counters measure exactly that
/// split (the node-side [`tashkent_replica::UpdateFilter`] then skips the
/// withheld items at zero cost, so behaviour and accounting agree).
///
/// When *every* member of a certifier group is dead, requests touching the
/// group park in a FIFO wait queue and drain — in arrival order — when a
/// member restarts ([`Ev::CertifierRestart`]): back-pressure, never
/// spurious aborts.
pub struct CertifierLink {
    certifier: Certifier,
    group: CertifierGroup,
    /// Certification requests arriving before this instant wait for the
    /// newly-elected leader (set by a leader kill's failover delay).
    available_at: SimTime,
    /// Unified-mode queue-and-wait parking lot (all members dead).
    wait: VecDeque<WaitingCert>,
    /// The sharded engine, when the cluster runs sharded certification.
    sharded: Option<ShardedCert>,
    propagation: PropagationPolicy,
    last_contact: Vec<SimTime>,
    lan_hop_us: u64,
    /// Writeset bytes actually shipped to replicas (holder items, headers,
    /// version ticks, backfill traffic).
    sent_bytes: u64,
    /// Writeset bytes withheld from non-holders — traffic saved vs full
    /// replication.
    saved_bytes: u64,
}

impl CertifierLink {
    /// Builds the link for `replicas` nodes, `lan_hop_us` away, fronted by
    /// the paper's leader-plus-two-backups certifier group.
    pub fn new(params: CertifierParams, replicas: usize, lan_hop_us: u64) -> Self {
        CertifierLink {
            certifier: Certifier::new(params),
            group: CertifierGroup::paper_default(),
            available_at: SimTime::ZERO,
            wait: VecDeque::new(),
            sharded: None,
            propagation: PropagationPolicy::default(),
            last_contact: vec![SimTime::ZERO; replicas],
            lan_hop_us,
            sent_bytes: 0,
            saved_bytes: 0,
        }
    }

    /// Builds the sharded-certification link: one leader+backups group and
    /// one [`CertShard`] per `map` relation group, a group-local order per
    /// group, and the coordinator-side global log.
    pub fn new_sharded(
        params: CertifierParams,
        replicas: usize,
        lan_hop_us: u64,
        map: Arc<CertMap>,
    ) -> Self {
        let mut link = Self::new(params, replicas, lan_hop_us);
        link.sharded = Some(ShardedCert::new(params, map));
        link
    }

    /// Cumulative propagation traffic `(shipped, saved)` in bytes: what was
    /// actually sent to replicas, and what partial replication withheld
    /// from non-holders. Saved is zero under full replication.
    pub fn propagation_bytes(&self) -> (u64, u64) {
        (self.sent_bytes, self.saved_bytes)
    }

    /// Charges `us` of control-plane occupancy (a heartbeat round's
    /// ping/ack pairs) against the link's shared NIC: certification
    /// requests arriving before the probes drain wait behind them. Not
    /// propagation traffic, so the fingerprinted byte counters are
    /// untouched.
    pub fn occupy_nic(&mut self, now: SimTime, us: u64) {
        self.available_at = self.available_at.max(now) + us;
    }

    /// Accounts the delivery of `pending` writesets to `replica`, adding to
    /// the shipped/saved counters (see [`delivery_bytes`]).
    fn account_delivery(
        &mut self,
        replica: usize,
        pending: &[CommittedWriteset],
        placement: Option<&PlacementMap>,
    ) {
        let (sent, saved) = delivery_bytes(replica, pending, placement);
        self.sent_bytes += sent;
        self.saved_bytes += saved;
    }

    /// The wrapped unified certifier (tests and metrics; meaningful only
    /// under unified certification — the sharded engine keeps its own log).
    pub fn inner(&self) -> &Certifier {
        &self.certifier
    }

    /// Membership and leadership of certifier group `g` (group 0 under
    /// unified certification).
    pub fn group_of(&self, g: usize) -> &CertifierGroup {
        match &self.sharded {
            Some(s) => &s.groups[g],
            None => &self.group,
        }
    }

    /// The (first) certifier group's membership and leadership.
    pub fn group(&self) -> &CertifierGroup {
        self.group_of(0)
    }

    /// Number of certifier groups under sharded certification (0 under the
    /// unified certifier).
    pub fn cert_group_count(&self) -> usize {
        self.sharded.as_ref().map_or(0, |s| s.groups.len())
    }

    /// Per-group ascending global commit versions (empty under unified
    /// certification) — part of the run's observable result.
    pub fn cert_group_commits(&self) -> Vec<Vec<u64>> {
        self.sharded
            .as_ref()
            .map_or_else(Vec::new, |s| s.group_commits.clone())
    }

    /// Sharded-certification activity counters `(committed, conflicts)`.
    pub fn cert_counts(&self) -> (u64, u64) {
        self.sharded
            .as_ref()
            .map_or((0, 0), |s| (s.committed, s.conflicts))
    }

    /// Requests currently parked in queue-and-wait (all modes).
    pub fn waiting_certs(&self) -> usize {
        self.wait.len()
            + self
                .sharded
                .as_ref()
                .map_or(0, |s| s.wait.iter().map(VecDeque::len).sum())
    }

    /// Group `g`'s `gsnap` for a snapshot version — how many of the group's
    /// commits the snapshot sees (the parallel driver computes this at
    /// window formation to ship checks to pool workers).
    pub fn cert_gsnap(&self, g: usize, snapshot: Version) -> u64 {
        self.sharded
            .as_ref()
            .expect("gsnap queried under unified certification")
            .gsnap(g, snapshot)
    }

    /// Leases group `g`'s certification shard out (to a driver worker).
    ///
    /// # Panics
    ///
    /// Panics if the shard is already leased out or the link is unified.
    pub fn take_cert_shard(&mut self, g: usize) -> Box<CertShard> {
        self.sharded
            .as_mut()
            .expect("cert shards exist only under sharded certification")
            .shards[g]
            .take()
            .expect("cert shard already leased to a driver")
    }

    /// Returns a leased certification shard.
    pub fn put_cert_shard(&mut self, g: usize, shard: Box<CertShard>) {
        let slot = &mut self
            .sharded
            .as_mut()
            .expect("cert shards exist only under sharded certification")
            .shards[g];
        debug_assert!(slot.is_none(), "returning a cert shard never leased");
        *slot = Some(shard);
    }

    /// Kills member `member` of certifier group `group`. A leader kill
    /// elects a backup and delays the group's responses until the new
    /// leader serves; the log — and thus every commit — survives (it is
    /// replicated to the backups).
    pub fn on_kill(&mut self, now: SimTime, group: usize, member: usize) -> Option<GroupEvent> {
        match &mut self.sharded {
            Some(s) => {
                if group >= s.groups.len() {
                    return None;
                }
                let ev = s.groups[group].kill(now, member);
                if let Some(GroupEvent::FailedOver { available_at, .. }) = ev {
                    s.shards[group]
                        .as_mut()
                        .expect("cert shard leased to a driver")
                        .set_available_at(available_at);
                }
                ev
            }
            None => {
                let ev = self.group.kill(now, member);
                if let Some(GroupEvent::FailedOver { available_at, .. }) = ev {
                    self.available_at = self.available_at.max(available_at);
                }
                ev
            }
        }
    }

    /// Restarts member `member` of certifier group `group`. If the group
    /// had no live members, the restarted member is elected leader after
    /// the failover delay and the requests parked during the outage drain
    /// through it in arrival order.
    pub fn on_restart(
        &mut self,
        now: SimTime,
        group: usize,
        member: usize,
        tracer: &mut Tracer,
        queue: &mut EventQueue<Ev>,
    ) -> Option<GroupEvent> {
        let (ev, drained) = match &mut self.sharded {
            Some(s) => {
                if group >= s.groups.len() {
                    return None;
                }
                let ev = s.groups[group].revive(now, member);
                if let Some(GroupEvent::FailedOver { available_at, .. }) = ev {
                    s.shards[group]
                        .as_mut()
                        .expect("cert shard leased to a driver")
                        .set_available_at(available_at);
                }
                let drained = if s.groups[group].is_available() {
                    std::mem::take(&mut s.wait[group])
                } else {
                    VecDeque::new()
                };
                (ev, drained)
            }
            None => {
                let ev = self.group.revive(now, member);
                if let Some(GroupEvent::FailedOver { available_at, .. }) = ev {
                    self.available_at = self.available_at.max(available_at);
                }
                let drained = if self.group.is_available() {
                    std::mem::take(&mut self.wait)
                } else {
                    VecDeque::new()
                };
                (ev, drained)
            }
        };
        for w in drained {
            // Re-certify at the original arrival time: the failover gap
            // (`available_at`) defers the service start, so drained requests
            // serve after the election in their original FIFO order.
            self.on_send(w.arrived, w.replica, w.txn, w.ws, w.groups, tracer, queue);
        }
        ev
    }

    /// Head of the global commit order.
    pub fn version(&self) -> Version {
        match &self.sharded {
            Some(s) => Version(s.log.len() as u64),
            None => self.certifier.version(),
        }
    }

    /// The global log's entries with versions in `(after, head]`.
    fn log_since(&self, after: Version) -> &[CommittedWriteset] {
        match &self.sharded {
            Some(s) => {
                let idx = (after.0 as usize).min(s.log.len());
                &s.log[idx..]
            }
            None => self.certifier.writesets_since(after),
        }
    }

    /// Certifies an arriving writeset and schedules the response back to the
    /// origin replica: the commit version once durable, or a conflict. A
    /// request touching a fully-dead group parks in its wait queue instead.
    ///
    /// `groups` is the touched-group bitmask stamped at send time (`0`
    /// under unified certification; nonzero masks require the sharded
    /// engine).
    #[allow(clippy::too_many_arguments)]
    pub fn on_send(
        &mut self,
        now: SimTime,
        replica: usize,
        txn: TxnId,
        ws: Writeset,
        groups: u64,
        tracer: &mut Tracer,
        queue: &mut EventQueue<Ev>,
    ) {
        if groups != 0 {
            self.on_send_sharded(now, replica, txn, ws, groups, tracer, queue);
            return;
        }
        if !self.group.is_available() {
            // Every member is dead: queue-and-wait — the request parks and
            // drains when a member restarts. Back-pressure, not an abort.
            self.wait.push_back(WaitingCert {
                arrived: now,
                replica,
                txn,
                ws,
                groups,
            });
            return;
        }
        // A request landing in a failover gap waits for the new leader.
        let now = now.max(self.available_at);
        match self.certifier.certify(now, ws) {
            CertifyOutcome::Committed {
                version,
                durable_at,
            } => {
                tracer.emit(
                    durable_at,
                    TraceData::Certify {
                        txn: txn.0,
                        groups: 0,
                        committed: true,
                        version: Some(version.0),
                    },
                );
                queue.schedule(
                    durable_at + self.lan_hop_us,
                    Ev::CertifyReturn {
                        replica,
                        txn,
                        version: Some(version),
                    },
                );
            }
            CertifyOutcome::Conflict => {
                tracer.emit(
                    now,
                    TraceData::Certify {
                        txn: txn.0,
                        groups: 0,
                        committed: false,
                        version: None,
                    },
                );
                queue.schedule(
                    now + self.lan_hop_us,
                    Ev::CertifyReturn {
                        replica,
                        txn,
                        version: None,
                    },
                );
            }
        }
        self.last_contact[replica] = now;
    }

    /// Sharded certification: a single-group request runs the group's shard
    /// check then the coordinator decide; a cross-group request runs the
    /// atomic-commitment round across the touched groups.
    #[allow(clippy::too_many_arguments)]
    fn on_send_sharded(
        &mut self,
        now: SimTime,
        replica: usize,
        txn: TxnId,
        ws: Writeset,
        groups: u64,
        tracer: &mut Tracer,
        queue: &mut EventQueue<Ev>,
    ) {
        let lan = self.lan_hop_us;
        let s = self
            .sharded
            .as_mut()
            .expect("nonzero group mask under unified certification");
        if let Some(g) = group_bits(groups).find(|g| !s.groups[*g].is_available()) {
            s.wait[g].push_back(WaitingCert {
                arrived: now,
                replica,
                txn,
                ws,
                groups,
            });
            return;
        }
        let eff_now = if groups.count_ones() == 1 {
            let g = groups.trailing_zeros() as usize;
            let gsnap = s.gsnap(g, ws.snapshot.version);
            let check = s.shards[g]
                .as_mut()
                .expect("cert shard leased to a driver")
                .check(now, &ws, gsnap);
            s.decide_single(g, replica, txn, ws, check, lan, tracer, queue)
        } else {
            s.decide_cross(groups, replica, txn, ws, now, lan, tracer, queue)
        };
        self.last_contact[replica] = eff_now;
    }

    /// The decide half of a worker-executed single-group check: the
    /// parallel driver ships the shard to a pool worker, the worker runs
    /// [`CertShard::check`], and the coordinator replays the decision here
    /// at the event's exact slot — global version assignment and response
    /// scheduling are bit-identical to the inline path.
    #[allow(clippy::too_many_arguments)]
    pub fn certify_decide(
        &mut self,
        group: usize,
        replica: usize,
        txn: TxnId,
        ws: Writeset,
        check: ShardCheck,
        tracer: &mut Tracer,
        queue: &mut EventQueue<Ev>,
    ) {
        let lan = self.lan_hop_us;
        let s = self
            .sharded
            .as_mut()
            .expect("certify_decide under unified certification");
        let eff_now = s.decide_single(group, replica, txn, ws, check, lan, tracer, queue);
        self.last_contact[replica] = eff_now;
    }

    /// The commit half of the response path: applies the intervening remote
    /// writesets on the origin replica, commits locally, and returns when
    /// the replica is done.
    ///
    /// A propagation pull may already have advanced the replica past this
    /// version (applying our own writeset as if remote — harmless, the pages
    /// are identical); the local commit only happens when the version is
    /// still ahead.
    pub fn on_return_commit(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        version: Version,
        placement: Option<&PlacementMap>,
    ) -> SimTime {
        if node.applied() >= version {
            return now;
        }
        let pending: Vec<CommittedWriteset> = self
            .log_since(node.applied())
            .iter()
            .filter(|cw| cw.version < version)
            .cloned()
            .collect();
        self.account_delivery(node.id(), &pending, placement);
        let t = node.apply_writesets(now, &pending);
        node.commit_local(version);
        t
    }

    /// Recovery catch-up (§3 standard recovery): replays onto `node` every
    /// writeset it missed from the certifier's persistent log, in commit
    /// order, and returns when the replay work completes. The node's cold
    /// cache pays the page reads back through its disk model. Under partial
    /// replication only held groups travel as pages — the rest of the log
    /// reaches the node as version ticks its filter skips for free.
    pub fn catch_up(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        placement: Option<&PlacementMap>,
    ) -> SimTime {
        let (done, sent, saved) = {
            let pending = self.log_since(node.applied());
            if pending.is_empty() {
                (now, 0, 0)
            } else {
                let (sent, saved) = delivery_bytes(node.id(), pending, placement);
                (node.apply_writesets(now, pending), sent, saved)
            }
        };
        self.sent_bytes += sent;
        self.saved_bytes += saved;
        self.last_contact[node.id()] = now;
        done
    }

    /// Re-replication backfill (partial replication): ships the log's items
    /// for `rels` — versions up to the node's applied version; later ones
    /// arrive through normal propagation once its filter widens — and
    /// re-applies them so the node's pages for those relations are current.
    /// Returns when the backfill work completes and the bytes it shipped.
    pub fn backfill(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        rels: &BTreeSet<RelationId>,
    ) -> (SimTime, u64) {
        let upto = self.backfill_upto(node);
        let (done, bytes, _) = self.backfill_chunk(now, node, rels, 0, upto, u64::MAX);
        (done, bytes)
    }

    /// The log index a backfill onto `node` must reach: its applied version
    /// (later entries arrive through normal propagation once its filter
    /// widens). Fixed when a staged backfill starts, so the chunks have a
    /// stable target.
    pub fn backfill_upto(&self, node: &ClusterNode) -> usize {
        (node.applied().0 as usize).min(self.log_since(Version(0)).len())
    }

    /// One bandwidth-capped slice of a backfill: re-applies log entries
    /// `[from, upto)` whose items touch `rels`, stopping once the shipped
    /// bytes reach `max_bytes` (always making progress past at least one
    /// shipping entry, so a tiny cap cannot stall the copy forever).
    /// Returns `(done, shipped_bytes, next_index)` — the chunk is finished
    /// when `next_index == upto`.
    pub fn backfill_chunk(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        rels: &BTreeSet<RelationId>,
        from: usize,
        upto: usize,
        max_bytes: u64,
    ) -> (SimTime, u64, usize) {
        let before = node.replica().stats();
        let (done, next) = {
            let log = self.log_since(Version(0));
            let upto = upto.min(log.len());
            let from = from.min(upto);
            // Pick the chunk end by the same byte formula the accounting
            // below uses: header + per-item bytes for the entries that ship
            // anything; entries touching none of `rels` are free to skip.
            let mut end = from;
            let mut used = 0u64;
            let mut shipped_any = false;
            while end < upto {
                let items = log[end]
                    .writeset
                    .items
                    .iter()
                    .filter(|i| rels.contains(&i.rel))
                    .count() as u64;
                let cost = if items > 0 {
                    WS_HEADER_BYTES + items * WS_ITEM_BYTES
                } else {
                    0
                };
                if shipped_any && used.saturating_add(cost) > max_bytes {
                    break;
                }
                used = used.saturating_add(cost);
                shipped_any |= cost > 0;
                end += 1;
                if used >= max_bytes {
                    break;
                }
            }
            (node.backfill_writesets(now, &log[from..end], rels), end)
        };
        // The node's backfill counters are the single source of truth for
        // what was actually re-applied; the shipped bytes derive from them.
        let after = node.replica().stats();
        let shipped_ws = after.writesets_backfilled - before.writesets_backfilled;
        let shipped_items = after.items_backfilled - before.items_backfilled;
        let bytes = shipped_ws * WS_HEADER_BYTES + shipped_items * WS_ITEM_BYTES;
        self.sent_bytes += bytes;
        self.last_contact[node.id()] = now;
        (done, bytes, next)
    }

    /// Periodic propagation: pulls (or prods) pending writesets onto a
    /// replica per the paper's 500 ms / 25-commit rules. The trigger reads
    /// the *global* log head in both certification modes — sharded groups
    /// share one propagation stream, since replicas apply the global order.
    pub fn maintenance_pull(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        placement: Option<&PlacementMap>,
    ) {
        let action = self.propagation.decide(
            now,
            self.last_contact[node.id()],
            node.applied(),
            self.version(),
        );
        if action != PropagationAction::None {
            let (applied, sent, saved) = {
                let pending = self.log_since(node.applied());
                if pending.is_empty() {
                    (false, 0, 0)
                } else {
                    let (sent, saved) = delivery_bytes(node.id(), pending, placement);
                    node.apply_writesets(now, pending);
                    (true, sent, saved)
                }
            };
            if applied {
                self.sent_bytes += sent;
                self.saved_bytes += saved;
                self.last_contact[node.id()] = now;
            }
        }
    }
}

/// The bytes delivering `pending` writesets to `replica` puts on the wire
/// `(shipped, saved)`: a replica holding at least one of a writeset's
/// relations receives the held items (header + per-item bytes); one holding
/// none of them receives only a version tick. Under full replication
/// (`placement` absent) everything ships and nothing is saved.
fn delivery_bytes(
    replica: usize,
    pending: &[CommittedWriteset],
    placement: Option<&PlacementMap>,
) -> (u64, u64) {
    let (mut sent, mut saved) = (0u64, 0u64);
    for cw in pending {
        let total = cw.writeset.items.len() as u64;
        let held = match placement {
            None => total,
            Some(p) => cw
                .writeset
                .items
                .iter()
                .filter(|i| p.holds(replica, i.rel))
                .count() as u64,
        };
        if total > 0 && held == 0 {
            sent += WS_TICK_BYTES;
            saved += cw.writeset.bytes() - WS_TICK_BYTES;
        } else {
            sent += WS_HEADER_BYTES + held * WS_ITEM_BYTES;
            saved += (total - held) * WS_ITEM_BYTES;
        }
    }
    (sent, saved)
}
