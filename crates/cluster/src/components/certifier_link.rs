//! The replicas' round-trip to the certifier.

use tashkent_certifier::{
    Certifier, CertifierGroup, CertifierParams, CertifyOutcome, CommittedWriteset, GroupEvent,
    PropagationAction, PropagationPolicy,
};
use tashkent_engine::{TxnId, Version, Writeset};
use tashkent_sim::{EventQueue, SimTime};

use crate::components::ClusterNode;
use crate::events::Ev;

/// Wraps the [`Certifier`] together with the propagation policy, the
/// leader/backup [`CertifierGroup`] (§4.4 fault tolerance), and the
/// per-replica contact bookkeeping it needs, handling both halves of the
/// certification round-trip plus the periodic propagation pulls.
pub struct CertifierLink {
    certifier: Certifier,
    group: CertifierGroup,
    /// Certification requests arriving before this instant wait for the
    /// newly-elected leader (set by a leader kill's failover delay).
    available_at: SimTime,
    propagation: PropagationPolicy,
    last_contact: Vec<SimTime>,
    lan_hop_us: u64,
}

impl CertifierLink {
    /// Builds the link for `replicas` nodes, `lan_hop_us` away, fronted by
    /// the paper's leader-plus-two-backups certifier group.
    pub fn new(params: CertifierParams, replicas: usize, lan_hop_us: u64) -> Self {
        CertifierLink {
            certifier: Certifier::new(params),
            group: CertifierGroup::paper_default(),
            available_at: SimTime::ZERO,
            propagation: PropagationPolicy::default(),
            last_contact: vec![SimTime::ZERO; replicas],
            lan_hop_us,
        }
    }

    /// The wrapped certifier (tests and metrics).
    pub fn inner(&self) -> &Certifier {
        &self.certifier
    }

    /// The certifier group's membership and leadership (tests and metrics).
    pub fn group(&self) -> &CertifierGroup {
        &self.group
    }

    /// Kills group member `member`. A leader kill elects a backup and
    /// delays certification responses until the new leader serves; the
    /// log — and thus every commit — survives (it is replicated to the
    /// backups).
    pub fn on_kill(&mut self, now: SimTime, member: usize) -> Option<GroupEvent> {
        let ev = self.group.kill(now, member);
        if let Some(GroupEvent::FailedOver { available_at, .. }) = ev {
            self.available_at = self.available_at.max(available_at);
        }
        ev
    }

    /// Head of the global commit order.
    pub fn version(&self) -> Version {
        self.certifier.version()
    }

    /// Certifies an arriving writeset and schedules the response back to the
    /// origin replica: the commit version once durable, or an immediate
    /// conflict.
    pub fn on_send(
        &mut self,
        now: SimTime,
        replica: usize,
        txn: TxnId,
        ws: Writeset,
        queue: &mut EventQueue<Ev>,
    ) {
        if !self.group.is_available() {
            // Every member is dead: the service is gone, the request fails
            // at the client like a conflict (it will retry, then give up).
            queue.schedule(
                now + self.lan_hop_us,
                Ev::CertifyReturn {
                    replica,
                    txn,
                    version: None,
                },
            );
            return;
        }
        // A request landing in a failover gap waits for the new leader.
        let now = now.max(self.available_at);
        match self.certifier.certify(now, ws) {
            CertifyOutcome::Committed {
                version,
                durable_at,
            } => {
                queue.schedule(
                    durable_at + self.lan_hop_us,
                    Ev::CertifyReturn {
                        replica,
                        txn,
                        version: Some(version),
                    },
                );
            }
            CertifyOutcome::Conflict => {
                queue.schedule(
                    now + self.lan_hop_us,
                    Ev::CertifyReturn {
                        replica,
                        txn,
                        version: None,
                    },
                );
            }
        }
        self.last_contact[replica] = now;
    }

    /// The commit half of the response path: applies the intervening remote
    /// writesets on the origin replica, commits locally, and returns when
    /// the replica is done.
    ///
    /// A propagation pull may already have advanced the replica past this
    /// version (applying our own writeset as if remote — harmless, the pages
    /// are identical); the local commit only happens when the version is
    /// still ahead.
    pub fn on_return_commit(
        &mut self,
        now: SimTime,
        node: &mut ClusterNode,
        version: Version,
    ) -> SimTime {
        if node.applied() >= version {
            return now;
        }
        let pending: Vec<CommittedWriteset> = self
            .certifier
            .writesets_since(node.applied())
            .iter()
            .filter(|cw| cw.version < version)
            .cloned()
            .collect();
        let t = node.apply_writesets(now, &pending);
        node.commit_local(version);
        t
    }

    /// Recovery catch-up (§3 standard recovery): replays onto `node` every
    /// writeset it missed from the certifier's persistent log, in commit
    /// order, and returns when the replay work completes. The node's cold
    /// cache pays the page reads back through its disk model.
    pub fn catch_up(&mut self, now: SimTime, node: &mut ClusterNode) -> SimTime {
        let pending = self.certifier.writesets_since(node.applied());
        let done = if pending.is_empty() {
            now
        } else {
            node.apply_writesets(now, pending)
        };
        self.last_contact[node.id()] = now;
        done
    }

    /// Periodic propagation: pulls (or prods) pending writesets onto a
    /// replica per the paper's 500 ms / 25-commit rules.
    pub fn maintenance_pull(&mut self, now: SimTime, node: &mut ClusterNode) {
        let action = self.propagation.decide(
            now,
            self.last_contact[node.id()],
            node.applied(),
            self.certifier.version(),
        );
        if action != PropagationAction::None {
            let pending: Vec<CommittedWriteset> =
                self.certifier.writesets_since(node.applied()).to_vec();
            if !pending.is_empty() {
                node.apply_writesets(now, &pending);
                self.last_contact[node.id()] = now;
            }
        }
    }
}
