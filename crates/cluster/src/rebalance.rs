//! The `rebalance` scenario: live placement rebalancing under workload
//! skew.
//!
//! Runs TPC-W partially replicated with the rebalancer enabled
//! ([`crate::config::ClusterConfig::migration_period`]) and the placement
//! backfill bandwidth-capped
//! ([`crate::config::ClusterConfig::backfill_bytes_per_sec`]), then shifts
//! the hot set mid-run by switching the mix ordering → browsing. The
//! per-group dispatch counters feed the periodic rebalance tick, which
//! migrates the hottest group from its busiest holder onto the idlest
//! non-holder — capped backfill onto the target (pages compete with
//! foreground propagation for its disk and NIC), dispatch eligibility only
//! at completion, and the donor dropped once the copy lands.
//!
//! A deterministic [`Ev::Rereplicate`] injection mid-first-phase guarantees
//! observable backfill traffic even at scales where the skew never crosses
//! the rebalancer's hysteresis band, so
//! [`crate::metrics::RunResult::migration_bytes`] is never trivially zero
//! and the cross-driver equivalence fingerprint exercises the whole
//! widen → backfill → eligible lifecycle on both drivers.

use tashkent_sim::SimTime;
use tashkent_workloads::tpcw::{self, TpcwScale};

use crate::config::{PlacementSpec, PolicySpec};
use crate::events::Ev;
use crate::experiment::{Experiment, Scenario, ScenarioKnobs};

/// Live rebalancing on TPC-W: capped backfill, skew-driven migration, a
/// mid-run hot-set shift.
pub struct Rebalance {
    /// Database scale.
    pub scale: TpcwScale,
    /// Holder copies per relation group when the knobs don't override it.
    pub min_copies: usize,
    /// Rebalance-tick period, seconds.
    pub migration_period_secs: u64,
    /// Backfill bandwidth cap when the knobs don't override it
    /// (`ScenarioKnobs::backfill_bytes_per_sec` wins when set).
    pub backfill_bytes_per_sec: u64,
}

impl Default for Rebalance {
    fn default() -> Self {
        Rebalance {
            scale: TpcwScale::Small,
            min_copies: 2,
            migration_period_secs: 2,
            backfill_bytes_per_sec: 2 * 1024 * 1024,
        }
    }
}

impl Scenario for Rebalance {
    fn name(&self) -> &'static str {
        "rebalance"
    }

    fn summary(&self) -> &'static str {
        "live placement rebalancing: capped backfill, skew-driven migration, hot set shifts mid-run"
    }

    fn experiment(&self, knobs: &ScenarioKnobs) -> Experiment {
        let (workload, ordering) = tpcw::workload_with_mix(self.scale, "ordering");
        let (_, browsing) = tpcw::workload_with_mix(self.scale, "browsing");
        let mut config = knobs.config(PolicySpec::LeastConnections);
        config.placement = PlacementSpec::Partial {
            min_copies: knobs.min_copies.unwrap_or(self.min_copies),
        };
        config.migration_period = Some(SimTime::from_secs(self.migration_period_secs));
        config.backfill_bytes_per_sec = knobs
            .backfill_bytes_per_sec
            .unwrap_or(self.backfill_bytes_per_sec);
        // The hot set shifts halfway through the measured window: the
        // update-heavy ordering mix concentrates load on the order-path
        // groups, then browsing moves it to the catalog-path groups.
        let first = (knobs.measured_secs / 2).max(1);
        let second = knobs.measured_secs.saturating_sub(first).max(1);
        Experiment {
            config,
            workload,
            phases: vec![(knobs.warmup_secs + first, ordering), (second, browsing)],
            warmup_secs: knobs.warmup_secs,
            freeze_at_secs: None,
            injections: Vec::new(),
            driver: knobs.driver,
        }
        // Deterministic backfill traffic regardless of whether the skew
        // crosses the rebalancer's hysteresis band at this scale.
        .with_injection(
            SimTime::from_secs(knobs.warmup_secs + (first / 2).max(1)),
            Ev::Rereplicate { group: 0 },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FaultKind;
    use crate::run_scenario;

    fn knobs() -> ScenarioKnobs {
        ScenarioKnobs {
            replicas: 4,
            clients_per_replica: 3,
            ..ScenarioKnobs::smoke()
        }
    }

    #[test]
    fn experiment_enables_the_rebalancer_and_caps_backfill() {
        let exp = Rebalance::default().experiment(&knobs());
        assert_eq!(
            exp.config.placement,
            PlacementSpec::Partial { min_copies: 2 }
        );
        assert_eq!(exp.config.migration_period, Some(SimTime::from_secs(2)));
        assert_eq!(exp.config.backfill_bytes_per_sec, 2 * 1024 * 1024);
        assert_eq!(exp.phases.len(), 2, "the hot set must shift mid-run");
        assert_eq!(exp.injections.len(), 1, "deterministic Rereplicate");
        // The knobs' cap overrides the scenario default.
        let capped = Rebalance::default().experiment(&knobs().with_backfill_cap(Some(512 * 1024)));
        assert_eq!(capped.config.backfill_bytes_per_sec, 512 * 1024);
    }

    #[test]
    fn run_ships_migration_traffic_and_keeps_serving() {
        let r = run_scenario("rebalance", &knobs()).expect("scenario completes");
        assert!(r.committed > 0, "cluster kept serving during migration");
        assert!(
            r.migration_bytes > 0,
            "capped backfill must ship observable bytes"
        );
        assert!(r.migration_us > 0, "a capped copy must take simulated time");
        assert!(
            r.faults.iter().any(|f| matches!(
                f.kind,
                FaultKind::Rereplicate { .. } | FaultKind::Migrate { .. }
            )),
            "the fault log must record the copy: {:?}",
            r.faults
        );
    }
}
