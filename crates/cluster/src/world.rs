//! The cluster event loop.
//!
//! All components live in one [`World`]; timestamped [`Ev`] events drive
//! them. The `World` owns one handler per component — [`ClusterNode`] per
//! replica, a [`CertifierLink`], and a [`BalancerCtl`] — plus the
//! cross-cutting state no single component owns: the client pool, in-flight
//! transaction metadata, and metrics. Every `Ev` arm is a thin delegate into
//! a component handler (see [`crate::components`] for the lifecycle
//! documentation).

use std::collections::HashMap;

use tashkent_certifier::Certifier;
use tashkent_core::{LoadBalancer, ReplicaId, ResourceLoad};
use tashkent_engine::{TxnExecutor, TxnId, TxnTypeId, Version};
use tashkent_replica::{ReplicaNode, UpdateFilter};
use tashkent_sim::{EventQueue, SimRng, SimTime};
use tashkent_workloads::{ClientPool, Mix, Workload};

use crate::components::{BalancerCtl, CertifierLink, ClusterNode};
use crate::config::ClusterConfig;
use crate::metrics::{GroupSnapshot, Metrics};

pub use crate::events::Ev;

/// Bookkeeping for one in-flight transaction.
struct TxnMeta {
    client: usize,
    txn_type: TxnTypeId,
    /// First submission time (retries keep the original arrival).
    arrived: SimTime,
    retries: u32,
    is_update: bool,
}

/// The assembled cluster.
pub struct World {
    /// Configuration.
    pub config: ClusterConfig,
    /// The workload (schema + transaction types).
    pub workload: Workload,
    /// Mixes selectable via `MixSwitch` (index 0 active initially).
    pub mixes: Vec<Mix>,
    active_mix: usize,
    queue: EventQueue<Ev>,
    balancer: BalancerCtl,
    nodes: Vec<ClusterNode>,
    certifier: CertifierLink,
    clients: ClientPool,
    rng: SimRng,
    next_txn: u64,
    txns: HashMap<TxnId, TxnMeta>,
    /// Metrics accumulator.
    pub metrics: Metrics,
    /// CPU/disk busy totals at the start of the measurement window.
    busy0: (u64, u64),
    window_started: SimTime,
    ended: bool,
}

impl World {
    /// Builds a world from a configuration, workload, and mixes (the first
    /// mix is active at start).
    ///
    /// # Panics
    ///
    /// Panics if `mixes` is empty.
    pub fn new(config: ClusterConfig, workload: Workload, mixes: Vec<Mix>) -> Self {
        assert!(!mixes.is_empty(), "world needs at least one mix");
        let mut rng = SimRng::seed_from(config.seed);
        let balancer = BalancerCtl::build(&config, &workload, &mixes[0]);
        let nodes: Vec<ClusterNode> = (0..config.replicas)
            .map(|id| {
                ClusterNode::new(
                    id,
                    ReplicaNode::new(
                        workload.catalog.clone(),
                        config.replica_config(),
                        rng.fork(),
                    ),
                    config.lan_hop_us,
                )
            })
            .collect();
        let certifier = CertifierLink::new(config.certifier, config.replicas, config.lan_hop_us);
        let clients = ClientPool::new(config.clients, config.think_mean_us);
        World {
            queue: EventQueue::new(),
            balancer,
            nodes,
            certifier,
            clients,
            rng,
            next_txn: 0,
            txns: HashMap::new(),
            metrics: Metrics::new(),
            active_mix: 0,
            config,
            workload,
            mixes,
            busy0: (0, 0),
            window_started: SimTime::ZERO,
            ended: false,
        }
    }

    /// Schedules the initial events: staggered client arrivals, per-replica
    /// maintenance, and balancer ticks.
    pub fn prime(&mut self) {
        for client in 0..self.config.clients {
            let delay = self.rng.exp_micros(self.config.think_mean_us.max(1));
            self.queue
                .schedule(SimTime::from_micros(delay), Ev::ClientArrive { client });
        }
        for replica in 0..self.config.replicas {
            self.queue.schedule(
                SimTime::from_millis(250),
                Ev::Maintenance { replica, round: 0 },
            );
        }
        self.queue.schedule(SimTime::from_secs(1), Ev::LbTick);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules an event (used by the experiment driver for phase switches
    /// and run boundaries).
    pub fn schedule(&mut self, at: SimTime, ev: Ev) {
        self.queue.schedule(at, ev);
    }

    /// Cluster-wide disk byte counters `(read, write)`.
    pub fn disk_bytes(&self) -> (u64, u64) {
        let mut read = 0;
        let mut write = 0;
        for n in &self.nodes {
            let s = n.replica().disk_stats();
            read += s.read_bytes();
            write += s.write_bytes();
        }
        (read, write)
    }

    /// Access a replica (tests and metrics).
    pub fn replica(&self, idx: usize) -> &ReplicaNode {
        self.nodes[idx].replica()
    }

    /// Access a cluster node handler (failure injection, alternate drivers).
    pub fn node(&self, idx: usize) -> &ClusterNode {
        &self.nodes[idx]
    }

    /// Mutable node access (failure injection, alternate drivers).
    pub fn node_mut(&mut self, idx: usize) -> &mut ClusterNode {
        &mut self.nodes[idx]
    }

    /// The balancer (tests and metrics).
    pub fn balancer(&self) -> &LoadBalancer {
        self.balancer.inner()
    }

    /// The certifier (tests and metrics).
    pub fn certifier(&self) -> &Certifier {
        self.certifier.inner()
    }

    /// Total CPU and disk busy microseconds across replicas.
    fn busy_totals(&self) -> (u64, u64) {
        let mut cpu = 0;
        let mut disk = 0;
        for n in &self.nodes {
            cpu += n.replica().cpu_busy_us();
            disk += n.replica().disk_stats().busy_us;
        }
        (cpu, disk)
    }

    /// Finalizes the run into a [`crate::metrics::RunResult`], including
    /// mean CPU/disk utilizations over the measurement window.
    pub fn finish_result(&self) -> crate::metrics::RunResult {
        let (read, write) = self.disk_bytes();
        let snaps = self.group_snapshots();
        let mut result = self.metrics.finish(self.now(), read, write, snaps);
        let (cpu, disk) = self.busy_totals();
        let window_us = (self.now().saturating_since(self.window_started) as f64).max(1.0)
            * self.config.replicas as f64;
        result.cpu_util = (cpu.saturating_sub(self.busy0.0)) as f64 / window_us;
        result.disk_util = (disk.saturating_sub(self.busy0.1)) as f64 / window_us;
        let stats = self.balancer.inner().stats();
        result.lb = crate::metrics::LbSummary {
            moves: stats.moves,
            merges: stats.merges,
            splits: stats.splits,
            fast_reallocs: stats.fast_reallocs,
            fallback: stats.fallback,
            filters_installed: self.balancer.inner().filters_installed(),
        };
        result
    }

    /// Current group → replica assignments with type names resolved.
    pub fn group_snapshots(&self) -> Vec<GroupSnapshot> {
        let loads = self.balancer.inner().loads();
        self.balancer
            .inner()
            .assignments()
            .into_iter()
            .map(|(types, replicas)| GroupSnapshot {
                types: types
                    .iter()
                    .map(|t| self.workload.type_name(*t).to_string())
                    .collect(),
                replicas: replicas.len(),
                load: if replicas.is_empty() {
                    0.0
                } else {
                    replicas
                        .iter()
                        .map(|r| loads[r.0].bottleneck())
                        .sum::<f64>()
                        / replicas.len() as f64
                },
            })
            .collect()
    }

    /// Runs until the `End` event fires.
    pub fn run_to_end(&mut self) {
        while !self.ended {
            let Some((now, ev)) = self.queue.pop() else {
                panic!("event queue drained before End event");
            };
            self.handle(now, ev);
        }
    }

    /// Routes one event to its component handler. Every arm is a thin
    /// delegate; the lifecycle lives in [`crate::components`].
    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::ClientArrive { client } => self.on_client_arrive(now, client),
            Ev::StepTxn { replica, txn } => self.nodes[replica].on_step(now, txn, &mut self.queue),
            Ev::CertifySend { replica, txn, ws } => {
                self.certifier
                    .on_send(now, replica, txn, ws, &mut self.queue)
            }
            Ev::CertifyReturn {
                replica,
                txn,
                version,
            } => self.on_certify_return(now, replica, txn, version),
            Ev::TxnComplete {
                replica,
                txn,
                committed,
            } => self.on_txn_complete(now, replica, txn, committed),
            Ev::Maintenance { replica, round } => self.on_maintenance(now, replica, round),
            Ev::LbTick => self.balancer.on_tick(now, &mut self.nodes, &mut self.queue),
            Ev::MixSwitch { mix } => self.active_mix = mix.min(self.mixes.len() - 1),
            Ev::FreezeLb => self.balancer.freeze(),
            Ev::EndWarmup => self.on_end_warmup(now),
            Ev::End => self.ended = true,
        }
    }

    /// Dispatches a new transaction instance: the balancer picks the
    /// replica, the node admits or queues it.
    fn submit_txn(
        &mut self,
        now: SimTime,
        client: usize,
        txn_type: TxnTypeId,
        arrived: SimTime,
        retries: u32,
    ) {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let replica = self.balancer.dispatch(txn_type).0;
        let node = &mut self.nodes[replica];
        let plan = self.workload.types[txn_type.0 as usize].plan.clone();
        let is_update = plan.is_update();
        let executor = TxnExecutor::new(txn, txn_type, plan, node.snapshot());
        self.txns.insert(
            txn,
            TxnMeta {
                client,
                txn_type,
                arrived,
                retries,
                is_update,
            },
        );
        node.submit(now, txn, executor, &mut self.queue);
    }

    fn on_client_arrive(&mut self, now: SimTime, client: usize) {
        let txn_type = self
            .clients
            .next_type(&self.mixes[self.active_mix], &mut self.rng);
        self.submit_txn(now, client, txn_type, now, 0);
    }

    /// Commit: apply remote writesets then finish; conflict: abort and let
    /// the completion path retry.
    fn on_certify_return(
        &mut self,
        now: SimTime,
        replica: usize,
        txn: TxnId,
        version: Option<Version>,
    ) {
        let done_at = match version {
            Some(v) => self
                .certifier
                .on_return_commit(now, &mut self.nodes[replica], v),
            None => {
                self.metrics.record_abort();
                now
            }
        };
        self.queue.schedule(
            done_at,
            Ev::TxnComplete {
                replica,
                txn,
                committed: version.is_some(),
            },
        );
    }

    /// Frees the replica slot, then routes the outcome back to the client:
    /// record + think on commit, retry or give up on abort.
    fn on_txn_complete(&mut self, now: SimTime, replica: usize, txn: TxnId, committed: bool) {
        self.nodes[replica].on_finish(now, committed, &mut self.queue);
        self.balancer.complete(ReplicaId(replica));
        let meta = self.txns.remove(&txn).expect("transaction metadata");
        if committed {
            let response_at = now + 2 * self.config.lan_hop_us;
            self.metrics.record_completion_typed(
                response_at,
                meta.arrived,
                meta.is_update,
                meta.txn_type.0,
            );
            self.schedule_next_arrival(response_at, meta.client);
        } else if meta.retries < self.clients.max_retries {
            // Retry immediately with a fresh snapshot (possibly elsewhere).
            self.submit_txn(
                now,
                meta.client,
                meta.txn_type,
                meta.arrived,
                meta.retries + 1,
            );
        } else {
            self.metrics.record_gave_up();
            self.schedule_next_arrival(now, meta.client);
        }
    }

    /// Schedules a client's next arrival after its think time.
    fn schedule_next_arrival(&mut self, from: SimTime, client: usize) {
        let think = self.clients.think(&mut self.rng);
        self.queue
            .schedule(from + think, Ev::ClientArrive { client });
    }

    /// Per-replica periodic work: node maintenance, propagation pull, and
    /// (every fourth 250 ms round) a load-daemon sample for the balancer.
    fn on_maintenance(&mut self, now: SimTime, replica: usize, round: u64) {
        let node = &mut self.nodes[replica];
        node.on_maintenance(now);
        self.certifier.maintenance_pull(now, node);
        if round % 4 == 3 {
            let report = node.sample_load(now);
            self.balancer.report(
                ReplicaId(replica),
                ResourceLoad {
                    cpu: report.cpu,
                    disk: report.disk,
                },
            );
        }
        self.queue.schedule(
            now + 250_000,
            Ev::Maintenance {
                replica,
                round: round + 1,
            },
        );
    }

    /// Resets the measurement window at the end of warm-up.
    fn on_end_warmup(&mut self, now: SimTime) {
        let (read, write) = self.disk_bytes();
        self.metrics.start_window(now, read, write);
        self.busy0 = self.busy_totals();
        self.window_started = now;
    }

    /// Installs an update filter on a replica (alternate drivers; the
    /// balancer tick normally does this itself).
    pub fn set_filter(&mut self, replica: usize, filter: UpdateFilter) {
        self.nodes[replica].set_filter(filter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use tashkent_workloads::tpcw::{self, TpcwScale};

    fn tiny_world(policy: PolicySpec) -> World {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy);
        World::new(config, workload, vec![mix])
    }

    fn run_secs(world: &mut World, warmup: u64, total: u64) {
        world.prime();
        world.schedule(SimTime::from_secs(warmup), Ev::EndWarmup);
        world.schedule(SimTime::from_secs(total), Ev::End);
        world.run_to_end();
    }

    #[test]
    fn transactions_flow_end_to_end() {
        let mut w = tiny_world(PolicySpec::LeastConnections);
        run_secs(&mut w, 2, 20);
        let (read, write) = w.disk_bytes();
        let r = w.metrics.finish(w.now(), read, write, Vec::new());
        assert!(r.committed > 10, "committed {}", r.committed);
        assert!(r.tps > 0.5, "tps {}", r.tps);
        assert!(r.mean_response_s > 0.0);
    }

    #[test]
    fn updates_propagate_to_all_replicas() {
        let mut w = tiny_world(PolicySpec::LeastConnections);
        run_secs(&mut w, 2, 30);
        let head = w.certifier().version();
        assert!(head.0 > 0, "some updates committed");
        for i in 0..2 {
            let lag = head.0 - w.replica(i).applied().0;
            assert!(lag <= 30, "replica {i} lags {lag} commits");
        }
    }

    #[test]
    fn malb_world_assigns_groups() {
        let mut w = tiny_world(PolicySpec::malb_sc());
        run_secs(&mut w, 2, 20);
        let snaps = w.group_snapshots();
        assert!(!snaps.is_empty());
        let types: usize = snaps.iter().map(|g| g.types.len()).sum();
        assert_eq!(types, 13, "all 13 TPC-W types grouped");
        let (read, write) = w.disk_bytes();
        let r = w.metrics.finish(w.now(), read, write, w.group_snapshots());
        assert!(r.committed > 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut w = tiny_world(PolicySpec::LeastConnections);
            run_secs(&mut w, 2, 15);
            let (read, write) = w.disk_bytes();
            let r = w.metrics.finish(w.now(), read, write, Vec::new());
            (r.committed, r.aborts, read, write)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mix_switch_changes_distribution() {
        let (workload, ordering) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let (_, browsing) = tpcw::workload_with_mix(TpcwScale::Small, "browsing");
        let config = ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        };
        let mut w = World::new(config, workload, vec![ordering, browsing]);
        w.prime();
        w.schedule(SimTime::from_secs(1), Ev::EndWarmup);
        w.schedule(SimTime::from_secs(10), Ev::MixSwitch { mix: 1 });
        w.schedule(SimTime::from_secs(30), Ev::End);
        w.run_to_end();
        // After the switch to read-only-ish browsing, update volume is low:
        // the certifier version grows far slower than completions.
        let (read, write) = w.disk_bytes();
        let r = w.metrics.finish(w.now(), read, write, Vec::new());
        assert!(r.committed > 0);
        assert!(
            (r.updates as f64) < 0.45 * r.committed as f64,
            "updates {} of {}",
            r.updates,
            r.committed
        );
    }
}
