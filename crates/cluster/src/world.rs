//! The assembled cluster: thin glue binding a [`ClusterState`] to an event
//! queue and a [`Driver`].
//!
//! All simulation semantics live one layer down: per-component handlers in
//! [`crate::components`], cross-cutting transaction/client/metrics state in
//! [`crate::state::ClusterState`], and the event-loop strategy in
//! [`crate::driver`]. `World` only assembles the three and forwards its
//! accessors, so existing entry points (tests, examples, the experiment
//! harness) keep a single convenient handle on a run.

use tashkent_certifier::Certifier;
use tashkent_core::LoadBalancer;
use tashkent_replica::{ReplicaNode, UpdateFilter};
use tashkent_sim::{EventQueue, SimTime};
use tashkent_workloads::{Mix, Workload};

use crate::components::ClusterNode;
use crate::config::ClusterConfig;
use crate::driver::{Driver, DriverKind, RunError};
use crate::metrics::{GroupSnapshot, Metrics, RunResult};
use crate::state::ClusterState;

pub use crate::events::Ev;

/// The assembled cluster: state + queue + driver.
pub struct World {
    state: ClusterState,
    queue: EventQueue<Ev>,
    driver: Box<dyn Driver>,
}

impl World {
    /// Builds a world from a configuration, workload, and mixes (the first
    /// mix is active at start), driven by the [`DriverKind::Sequential`]
    /// reference driver.
    ///
    /// # Panics
    ///
    /// Panics if `mixes` is empty.
    pub fn new(config: ClusterConfig, workload: Workload, mixes: Vec<Mix>) -> Self {
        Self::with_driver(config, workload, mixes, DriverKind::Sequential)
    }

    /// Builds a world that runs under the given driver. Every driver
    /// produces identical results for the same seed; the parallel driver is
    /// faster on multi-core hosts for multi-replica configurations.
    pub fn with_driver(
        config: ClusterConfig,
        workload: Workload,
        mixes: Vec<Mix>,
        driver: DriverKind,
    ) -> Self {
        World {
            state: ClusterState::new(config, workload, mixes),
            queue: EventQueue::new(),
            driver: driver.build(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.state.config
    }

    /// The workload (schema + transaction types).
    pub fn workload(&self) -> &Workload {
        &self.state.workload
    }

    /// Metrics accumulator.
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Schedules the initial events: staggered client arrivals, per-replica
    /// maintenance, and balancer ticks.
    pub fn prime(&mut self) {
        self.state.prime(&mut self.queue);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules an event (used by the experiment driver for phase switches
    /// and run boundaries).
    pub fn schedule(&mut self, at: SimTime, ev: Ev) {
        self.queue.schedule(at, ev);
    }

    /// Cluster-wide disk byte counters `(read, write)`.
    pub fn disk_bytes(&self) -> (u64, u64) {
        self.state.disk_bytes()
    }

    /// Access a replica (tests and metrics).
    pub fn replica(&self, idx: usize) -> &ReplicaNode {
        self.state.replica(idx)
    }

    /// Access a cluster node handler (failure injection, alternate drivers).
    pub fn node(&self, idx: usize) -> &ClusterNode {
        self.state.node(idx)
    }

    /// Mutable node access (failure injection, alternate drivers).
    pub fn node_mut(&mut self, idx: usize) -> &mut ClusterNode {
        self.state.node_access_mut(idx)
    }

    /// The balancer (tests and metrics).
    pub fn balancer(&self) -> &LoadBalancer {
        self.state.balancer()
    }

    /// The certifier (tests and metrics).
    pub fn certifier(&self) -> &Certifier {
        self.state.certifier()
    }

    /// The certifier group's membership and leadership (tests and metrics).
    pub fn certifier_group(&self) -> &tashkent_certifier::CertifierGroup {
        self.state.certifier_group()
    }

    /// The full certifier link — per-group state under sharded
    /// certification (tests and metrics).
    pub fn cert_link(&self) -> &crate::components::CertifierLink {
        self.state.cert_link()
    }

    /// A replica's health as the detector currently believes it (always
    /// `Live` when the detector is off — see
    /// [`crate::config::ClusterConfig::heartbeat_period_us`]).
    pub fn replica_health(&self, idx: usize) -> crate::components::ReplicaHealth {
        self.state.replica_health(idx)
    }

    /// Finalizes the run into a [`RunResult`], including mean CPU/disk
    /// utilizations over the measurement window.
    pub fn finish_result(&self) -> RunResult {
        self.state.finish_result(self.now())
    }

    /// Current group → replica assignments with type names resolved.
    pub fn group_snapshots(&self) -> Vec<GroupSnapshot> {
        self.state.group_snapshots()
    }

    /// The partial-replication placement map, when the cluster runs one
    /// (`None` under full replication).
    pub fn placement(&self) -> Option<&crate::placement::PlacementMap> {
        self.state.placement()
    }

    /// Runs until the `End` event fires.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::QueueDrained`] when the event queue empties
    /// before `End` — a mis-scheduled experiment. The world stays
    /// inspectable at the drained point.
    pub fn run_to_end(&mut self) -> Result<(), RunError> {
        self.driver.run_to_end(&mut self.state, &mut self.queue)
    }

    /// Installs an update filter on a replica (alternate drivers; the
    /// balancer tick normally does this itself).
    pub fn set_filter(&mut self, replica: usize, filter: UpdateFilter) {
        self.state.set_filter(replica, filter);
    }

    /// Writes the recorded trace to the paths configured in
    /// [`crate::trace::TraceConfig`] — JSONL and/or Chrome `trace_event`
    /// JSON. A no-op when tracing is disabled.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing either output file.
    pub fn export_traces(&self) -> std::io::Result<()> {
        let cfg = &self.state.config.trace;
        if let Some(path) = &cfg.jsonl_path {
            std::fs::write(path, self.state.tracer.export_jsonl())?;
        }
        if let Some(path) = &cfg.chrome_path {
            std::fs::write(path, self.state.tracer.export_chrome())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicySpec;
    use tashkent_workloads::tpcw::{self, TpcwScale};

    fn tiny_world(policy: PolicySpec, driver: DriverKind) -> World {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy);
        World::with_driver(config, workload, vec![mix], driver)
    }

    fn run_secs(world: &mut World, warmup: u64, total: u64) {
        world.prime();
        world.schedule(SimTime::from_secs(warmup), Ev::EndWarmup);
        world.schedule(SimTime::from_secs(total), Ev::End);
        world.run_to_end().expect("End event scheduled");
    }

    #[test]
    fn transactions_flow_end_to_end() {
        let mut w = tiny_world(PolicySpec::LeastConnections, DriverKind::Sequential);
        run_secs(&mut w, 2, 20);
        let (read, write) = w.disk_bytes();
        let r = w.metrics().finish(w.now(), read, write, Vec::new());
        assert!(r.committed > 10, "committed {}", r.committed);
        assert!(r.tps > 0.5, "tps {}", r.tps);
        assert!(r.mean_response_s > 0.0);
    }

    #[test]
    fn updates_propagate_to_all_replicas() {
        let mut w = tiny_world(PolicySpec::LeastConnections, DriverKind::Sequential);
        run_secs(&mut w, 2, 30);
        let head = w.certifier().version();
        assert!(head.0 > 0, "some updates committed");
        for i in 0..2 {
            let lag = head.0 - w.replica(i).applied().0;
            assert!(lag <= 30, "replica {i} lags {lag} commits");
        }
    }

    #[test]
    fn malb_world_assigns_groups() {
        let mut w = tiny_world(PolicySpec::malb_sc(), DriverKind::Sequential);
        run_secs(&mut w, 2, 20);
        let snaps = w.group_snapshots();
        assert!(!snaps.is_empty());
        let types: usize = snaps.iter().map(|g| g.types.len()).sum();
        assert_eq!(types, 13, "all 13 TPC-W types grouped");
        let (read, write) = w.disk_bytes();
        let r = w
            .metrics()
            .finish(w.now(), read, write, w.group_snapshots());
        assert!(r.committed > 10);
    }

    fn run_fingerprint(driver: DriverKind) -> (u64, u64, u64, u64) {
        let mut w = tiny_world(PolicySpec::LeastConnections, driver);
        run_secs(&mut w, 2, 15);
        let (read, write) = w.disk_bytes();
        let r = w.metrics().finish(w.now(), read, write, Vec::new());
        (r.committed, r.aborts, read, write)
    }

    #[test]
    fn deterministic_across_runs() {
        assert_eq!(
            run_fingerprint(DriverKind::Sequential),
            run_fingerprint(DriverKind::Sequential)
        );
    }

    #[test]
    fn deterministic_across_runs_parallel() {
        // Two threads even on a single-core host: the merge, not the
        // scheduler, defines the result.
        let parallel = DriverKind::Parallel { threads: 2 };
        assert_eq!(run_fingerprint(parallel), run_fingerprint(parallel));
    }

    #[test]
    fn parallel_driver_matches_sequential() {
        assert_eq!(
            run_fingerprint(DriverKind::Sequential),
            run_fingerprint(DriverKind::Parallel { threads: 2 })
        );
    }

    #[test]
    fn drained_queue_is_an_error_not_a_panic() {
        let mut w = tiny_world(PolicySpec::LeastConnections, DriverKind::Sequential);
        // No priming, no End event: one lone event, then the queue drains.
        w.schedule(SimTime::from_secs(1), Ev::FreezeLb);
        let err = w.run_to_end().unwrap_err();
        assert_eq!(
            err,
            RunError::QueueDrained {
                at: SimTime::from_secs(1)
            }
        );
    }

    #[test]
    fn mix_switch_changes_distribution() {
        let (workload, ordering) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let (_, browsing) = tpcw::workload_with_mix(TpcwScale::Small, "browsing");
        let config = ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        };
        let mut w = World::new(config, workload, vec![ordering, browsing]);
        w.prime();
        w.schedule(SimTime::from_secs(1), Ev::EndWarmup);
        w.schedule(SimTime::from_secs(10), Ev::MixSwitch { mix: 1 });
        w.schedule(SimTime::from_secs(30), Ev::End);
        w.run_to_end().expect("End event scheduled");
        // After the switch to read-only-ish browsing, update volume is low:
        // the certifier version grows far slower than completions.
        let (read, write) = w.disk_bytes();
        let r = w.metrics().finish(w.now(), read, write, Vec::new());
        assert!(r.committed > 0);
        assert!(
            (r.updates as f64) < 0.45 * r.committed as f64,
            "updates {} of {}",
            r.updates,
            r.committed
        );
    }
}
