//! The cluster event loop.
//!
//! All components live in one [`World`]; timestamped [`Ev`] events drive
//! them. The transaction lifecycle:
//!
//! 1. `ClientArrive` — a client finishes thinking, the balancer picks a
//!    replica, the proxy (Gatekeeper) admits or queues the transaction;
//! 2. `StepTxn` — the replica advances the transaction by a CPU quantum or
//!    one disk read;
//! 3. read-only transactions complete locally (`TxnComplete`); update
//!    transactions send their writeset to the certifier (`CertifySend`),
//!    whose response (`CertifyReturn`) carries the remote writesets the
//!    replica must apply before committing — or a conflict, aborting the
//!    transaction for the client to retry;
//! 4. `Maintenance` — per replica: background writes, propagation pulls
//!    (500 ms), load-daemon samples (1 s);
//! 5. `LbTick` — MALB rebalancing and (eventually) filter installation.

use std::collections::HashMap;

use tashkent_certifier::{Certifier, CertifyOutcome, CommittedWriteset, PropagationAction, PropagationPolicy};
use tashkent_core::{LoadBalancer, ReconfigAction, ReplicaId, ResourceLoad, WorkingSetEstimator};
use tashkent_engine::{TxnExecutor, TxnId, TxnTypeId, Version, Writeset};
use tashkent_replica::{ReplicaNode, StepOutcome, UpdateFilter};
use tashkent_sim::{EventQueue, SimRng, SimTime};
use tashkent_workloads::{ClientPool, Mix, Workload};

use crate::config::{ClusterConfig, PolicySpec};
use crate::metrics::{GroupSnapshot, Metrics};

/// Events driving the simulation.
#[derive(Debug)]
pub enum Ev {
    /// A client submits its next transaction.
    ClientArrive {
        /// Client index.
        client: usize,
    },
    /// Continue executing a transaction on a replica.
    StepTxn {
        /// Replica index.
        replica: usize,
        /// Transaction.
        txn: TxnId,
    },
    /// A writeset reaches the certifier.
    CertifySend {
        /// Origin replica.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// The writeset.
        ws: Writeset,
    },
    /// The certifier's response reaches the replica.
    CertifyReturn {
        /// Origin replica.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// Commit version, or `None` on conflict.
        version: Option<Version>,
    },
    /// A transaction finished on its replica (response travels to client).
    TxnComplete {
        /// Replica index.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// Whether it committed (vs aborted).
        committed: bool,
    },
    /// Per-replica periodic work: background writer, propagation, daemon.
    Maintenance {
        /// Replica index.
        replica: usize,
        /// Round counter (daemon samples every other round).
        round: u64,
    },
    /// Load-balancer rebalance tick.
    LbTick,
    /// Switch the workload mix (dynamic-reconfiguration experiments).
    MixSwitch {
        /// Index into the experiment's mix list.
        mix: usize,
    },
    /// Freeze the balancer (static-configuration baseline).
    FreezeLb,
    /// End of warm-up: reset the measurement window.
    EndWarmup,
    /// End of run.
    End,
}

/// Bookkeeping for one in-flight transaction.
struct TxnMeta {
    client: usize,
    txn_type: TxnTypeId,
    /// First submission time (retries keep the original arrival).
    arrived: SimTime,
    retries: u32,
    is_update: bool,
}

/// The assembled cluster.
pub struct World {
    /// Configuration.
    pub config: ClusterConfig,
    /// The workload (schema + transaction types).
    pub workload: Workload,
    /// Mixes selectable via `MixSwitch` (index 0 active initially).
    pub mixes: Vec<Mix>,
    active_mix: usize,
    queue: EventQueue<Ev>,
    lb: LoadBalancer,
    replicas: Vec<ReplicaNode>,
    certifier: Certifier,
    propagation: PropagationPolicy,
    last_contact: Vec<SimTime>,
    clients: ClientPool,
    rng: SimRng,
    next_txn: u64,
    txns: HashMap<TxnId, TxnMeta>,
    /// Metrics accumulator.
    pub metrics: Metrics,
    /// CPU/disk busy totals at the start of the measurement window.
    busy0: (u64, u64),
    window_started: SimTime,
    ended: bool,
}

impl World {
    /// Builds a world from a configuration, workload, and mixes (the first
    /// mix is active at start).
    ///
    /// # Panics
    ///
    /// Panics if `mixes` is empty.
    pub fn new(config: ClusterConfig, workload: Workload, mixes: Vec<Mix>) -> Self {
        assert!(!mixes.is_empty(), "world needs at least one mix");
        let mut rng = SimRng::seed_from(config.seed);
        let lb = build_balancer(&config, &workload, &mixes[0]);
        let replicas: Vec<ReplicaNode> = (0..config.replicas)
            .map(|_| {
                ReplicaNode::new(
                    workload.catalog.clone(),
                    config.replica_config(),
                    rng.fork(),
                )
            })
            .collect();
        let clients = ClientPool::new(config.clients, config.think_mean_us);
        World {
            queue: EventQueue::new(),
            lb,
            replicas,
            certifier: Certifier::new(config.certifier),
            propagation: PropagationPolicy::default(),
            last_contact: vec![SimTime::ZERO; config.replicas],
            clients,
            rng,
            next_txn: 0,
            txns: HashMap::new(),
            metrics: Metrics::new(),
            active_mix: 0,
            config,
            workload,
            mixes,
            busy0: (0, 0),
            window_started: SimTime::ZERO,
            ended: false,
        }
    }

    /// Schedules the initial events: staggered client arrivals, per-replica
    /// maintenance, and balancer ticks.
    pub fn prime(&mut self) {
        for client in 0..self.config.clients {
            let delay = self.rng.exp_micros(self.config.think_mean_us.max(1));
            self.queue.schedule(SimTime::from_micros(delay), Ev::ClientArrive { client });
        }
        for replica in 0..self.config.replicas {
            self.queue
                .schedule(SimTime::from_millis(250), Ev::Maintenance { replica, round: 0 });
        }
        self.queue
            .schedule(SimTime::from_secs(1), Ev::LbTick);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules an event (used by the experiment driver for phase switches
    /// and run boundaries).
    pub fn schedule(&mut self, at: SimTime, ev: Ev) {
        self.queue.schedule(at, ev);
    }

    /// Cluster-wide disk byte counters `(read, write)`.
    pub fn disk_bytes(&self) -> (u64, u64) {
        let mut read = 0;
        let mut write = 0;
        for r in &self.replicas {
            let s = r.disk_stats();
            read += s.read_bytes();
            write += s.write_bytes();
        }
        (read, write)
    }

    /// Access a replica (tests and metrics).
    pub fn replica(&self, idx: usize) -> &ReplicaNode {
        &self.replicas[idx]
    }

    /// The balancer (tests and metrics).
    pub fn balancer(&self) -> &LoadBalancer {
        &self.lb
    }

    /// The certifier (tests and metrics).
    pub fn certifier(&self) -> &Certifier {
        &self.certifier
    }

    /// Total CPU and disk busy microseconds across replicas.
    fn busy_totals(&self) -> (u64, u64) {
        let mut cpu = 0;
        let mut disk = 0;
        for r in &self.replicas {
            cpu += r.cpu_busy_us();
            disk += r.disk_stats().busy_us;
        }
        (cpu, disk)
    }

    /// Finalizes the run into a [`crate::metrics::RunResult`], including
    /// mean CPU/disk utilizations over the measurement window.
    pub fn finish_result(&self) -> crate::metrics::RunResult {
        let (read, write) = self.disk_bytes();
        let snaps = self.group_snapshots();
        let mut result = self.metrics.finish(self.now(), read, write, snaps);
        let (cpu, disk) = self.busy_totals();
        let window_us =
            (self.now().saturating_since(self.window_started) as f64).max(1.0) * self.config.replicas as f64;
        result.cpu_util = (cpu.saturating_sub(self.busy0.0)) as f64 / window_us;
        result.disk_util = (disk.saturating_sub(self.busy0.1)) as f64 / window_us;
        let stats = self.lb.stats();
        result.lb = crate::metrics::LbSummary {
            moves: stats.moves,
            merges: stats.merges,
            splits: stats.splits,
            fast_reallocs: stats.fast_reallocs,
            fallback: stats.fallback,
            filters_installed: self.lb.filters_installed(),
        };
        result
    }

    /// Current group → replica assignments with type names resolved.
    pub fn group_snapshots(&self) -> Vec<GroupSnapshot> {
        let loads = self.lb.loads();
        self.lb
            .assignments()
            .into_iter()
            .map(|(types, replicas)| GroupSnapshot {
                types: types
                    .iter()
                    .map(|t| self.workload.type_name(*t).to_string())
                    .collect(),
                replicas: replicas.len(),
                load: if replicas.is_empty() {
                    0.0
                } else {
                    replicas
                        .iter()
                        .map(|r| loads[r.0].bottleneck())
                        .sum::<f64>()
                        / replicas.len() as f64
                },
            })
            .collect()
    }

    /// Runs until the `End` event fires.
    pub fn run_to_end(&mut self) {
        while !self.ended {
            let Some((now, ev)) = self.queue.pop() else {
                panic!("event queue drained before End event");
            };
            self.handle(now, ev);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::ClientArrive { client } => self.on_client_arrive(now, client),
            Ev::StepTxn { replica, txn } => self.on_step(now, replica, txn),
            Ev::CertifySend { replica, txn, ws } => self.on_certify_send(now, replica, txn, ws),
            Ev::CertifyReturn {
                replica,
                txn,
                version,
            } => self.on_certify_return(now, replica, txn, version),
            Ev::TxnComplete {
                replica,
                txn,
                committed,
            } => self.on_txn_complete(now, replica, txn, committed),
            Ev::Maintenance { replica, round } => self.on_maintenance(now, replica, round),
            Ev::LbTick => self.on_lb_tick(now),
            Ev::MixSwitch { mix } => {
                self.active_mix = mix.min(self.mixes.len() - 1);
            }
            Ev::FreezeLb => self.lb.freeze(),
            Ev::EndWarmup => {
                let (read, write) = self.disk_bytes();
                self.metrics.start_window(now, read, write);
                self.busy0 = self.busy_totals();
                self.window_started = now;
            }
            Ev::End => self.ended = true,
        }
    }

    fn submit_txn(&mut self, now: SimTime, client: usize, txn_type: TxnTypeId, arrived: SimTime, retries: u32) {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let replica_id = self.lb.dispatch(txn_type);
        let replica = replica_id.0;
        let node = &mut self.replicas[replica];
        let plan = self.workload.types[txn_type.0 as usize].plan.clone();
        let is_update = plan.is_update();
        let executor = TxnExecutor::new(txn, txn_type, plan, node.snapshot());
        self.txns.insert(
            txn,
            TxnMeta {
                client,
                txn_type,
                arrived,
                retries,
                is_update,
            },
        );
        let admitted = node.submit(executor);
        if admitted {
            // Client → balancer → replica: two LAN hops.
            self.queue
                .schedule(now + 2 * self.config.lan_hop_us, Ev::StepTxn { replica, txn });
        }
        // If queued, the Gatekeeper will admit it when a slot frees.
    }

    fn on_client_arrive(&mut self, now: SimTime, client: usize) {
        let txn_type = self.clients.next_type(&self.mixes[self.active_mix], &mut self.rng);
        self.submit_txn(now, client, txn_type, now, 0);
    }

    fn on_step(&mut self, now: SimTime, replica: usize, txn: TxnId) {
        match self.replicas[replica].step(txn, now) {
            StepOutcome::Busy(t) => {
                self.queue.schedule(t, Ev::StepTxn { replica, txn });
            }
            StepOutcome::Done(t) => {
                self.queue.schedule(
                    t,
                    Ev::TxnComplete {
                        replica,
                        txn,
                        committed: true,
                    },
                );
            }
            StepOutcome::ReadyToCommit(t, ws) => {
                self.queue.schedule(
                    t + self.config.lan_hop_us,
                    Ev::CertifySend { replica, txn, ws },
                );
            }
        }
    }

    fn on_certify_send(&mut self, now: SimTime, replica: usize, txn: TxnId, ws: Writeset) {
        match self.certifier.certify(now, ws) {
            CertifyOutcome::Committed {
                version,
                durable_at,
            } => {
                self.queue.schedule(
                    durable_at + self.config.lan_hop_us,
                    Ev::CertifyReturn {
                        replica,
                        txn,
                        version: Some(version),
                    },
                );
            }
            CertifyOutcome::Conflict => {
                self.queue.schedule(
                    now + self.config.lan_hop_us,
                    Ev::CertifyReturn {
                        replica,
                        txn,
                        version: None,
                    },
                );
            }
        }
        self.last_contact[replica] = now;
    }

    fn on_certify_return(
        &mut self,
        now: SimTime,
        replica: usize,
        txn: TxnId,
        version: Option<Version>,
    ) {
        match version {
            Some(version) => {
                // Apply intervening remote writesets, then commit locally.
                // A propagation pull may already have advanced the replica
                // past this version (applying our own writeset as if remote
                // — harmless, the pages are identical); only commit when the
                // version is still ahead.
                let node = &mut self.replicas[replica];
                let t_applied = if node.applied() < version {
                    let pending: Vec<CommittedWriteset> = self
                        .certifier
                        .writesets_since(node.applied())
                        .iter()
                        .filter(|cw| cw.version < version)
                        .cloned()
                        .collect();
                    let t = node.apply_writesets(now, &pending);
                    node.commit_local(version);
                    t
                } else {
                    now
                };
                self.queue.schedule(
                    t_applied,
                    Ev::TxnComplete {
                        replica,
                        txn,
                        committed: true,
                    },
                );
            }
            None => {
                self.metrics.record_abort();
                self.queue.schedule(
                    now,
                    Ev::TxnComplete {
                        replica,
                        txn,
                        committed: false,
                    },
                );
            }
        }
    }

    fn on_txn_complete(&mut self, now: SimTime, replica: usize, txn: TxnId, committed: bool) {
        // Free the Gatekeeper slot; a queued transaction may start.
        if let Some(next) = self.replicas[replica].finish(committed) {
            self.queue.schedule(now, Ev::StepTxn { replica, txn: next });
        }
        self.lb.complete(ReplicaId(replica));
        let meta = self.txns.remove(&txn).expect("transaction metadata");
        if committed {
            let response_at = now + 2 * self.config.lan_hop_us;
            self.metrics.record_completion_typed(
                response_at,
                meta.arrived,
                meta.is_update,
                meta.txn_type.0,
            );
            let think = self.clients.think(&mut self.rng);
            self.queue.schedule(
                response_at + think,
                Ev::ClientArrive {
                    client: meta.client,
                },
            );
        } else if meta.retries < self.clients.max_retries {
            // Retry immediately with a fresh snapshot (possibly elsewhere).
            self.submit_txn(now, meta.client, meta.txn_type, meta.arrived, meta.retries + 1);
        } else {
            self.metrics.record_gave_up();
            let think = self.clients.think(&mut self.rng);
            self.queue.schedule(
                now + think,
                Ev::ClientArrive {
                    client: meta.client,
                },
            );
        }
    }

    fn on_maintenance(&mut self, now: SimTime, replica: usize, round: u64) {
        self.replicas[replica].maintenance(now);

        // Propagation: pull or prod per the paper's 500 ms / 25-commit rules.
        let node = &mut self.replicas[replica];
        let action = self.propagation.decide(
            now,
            self.last_contact[replica],
            node.applied(),
            self.certifier.version(),
        );
        if action != PropagationAction::None {
            let pending: Vec<CommittedWriteset> =
                self.certifier.writesets_since(node.applied()).to_vec();
            if !pending.is_empty() {
                node.apply_writesets(now, &pending);
                self.last_contact[replica] = now;
            }
        }

        // Load daemon samples every second (every fourth 250 ms round).
        if round % 4 == 3 {
            let report = self.replicas[replica].sample_load(now);
            self.lb.report(
                ReplicaId(replica),
                ResourceLoad {
                    cpu: report.cpu,
                    disk: report.disk,
                },
            );
        }
        self.queue.schedule(
            now + 250_000,
            Ev::Maintenance {
                replica,
                round: round + 1,
            },
        );
    }

    fn on_lb_tick(&mut self, now: SimTime) {
        for action in self.lb.tick(now) {
            match action {
                ReconfigAction::SetFilter { replica, tables } => {
                    let filter = match tables {
                        Some(t) => UpdateFilter::only(t),
                        None => UpdateFilter::all(),
                    };
                    self.replicas[replica.0].set_filter(filter);
                }
                ReconfigAction::Moved { .. } => {}
            }
        }
        self.queue.schedule(now + 1_000_000, Ev::LbTick);
    }
}

/// Builds the balancer for a config, estimating working sets for MALB from
/// the active mix's transaction types via `EXPLAIN` + catalog metadata —
/// exactly the paper's information channel (§4.2.2).
fn build_balancer(config: &ClusterConfig, workload: &Workload, mix: &Mix) -> LoadBalancer {
    match config.policy {
        PolicySpec::RoundRobin => LoadBalancer::round_robin(config.replicas),
        PolicySpec::LeastConnections => LoadBalancer::least_connections(config.replicas),
        PolicySpec::Lard => LoadBalancer::lard(config.replicas, config.lard),
        PolicySpec::Malb { .. } => {
            let estimator = WorkingSetEstimator::new(&workload.catalog);
            let sets = mix
                .active_types()
                .iter()
                .map(|t| estimator.estimate(*t, &workload.explain(*t)))
                .collect();
            let malb_cfg = config.malb_config().expect("policy is MALB");
            LoadBalancer::malb(config.replicas, sets, malb_cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tashkent_workloads::tpcw::{self, TpcwScale};

    fn tiny_world(policy: PolicySpec) -> World {
        let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let config = ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy);
        World::new(config, workload, vec![mix])
    }

    fn run_secs(world: &mut World, warmup: u64, total: u64) {
        world.prime();
        world.schedule(SimTime::from_secs(warmup), Ev::EndWarmup);
        world.schedule(SimTime::from_secs(total), Ev::End);
        world.run_to_end();
    }

    #[test]
    fn transactions_flow_end_to_end() {
        let mut w = tiny_world(PolicySpec::LeastConnections);
        run_secs(&mut w, 2, 20);
        let (read, write) = w.disk_bytes();
        let r = w.metrics.finish(w.now(), read, write, Vec::new());
        assert!(r.committed > 10, "committed {}", r.committed);
        assert!(r.tps > 0.5, "tps {}", r.tps);
        assert!(r.mean_response_s > 0.0);
    }

    #[test]
    fn updates_propagate_to_all_replicas() {
        let mut w = tiny_world(PolicySpec::LeastConnections);
        run_secs(&mut w, 2, 30);
        let head = w.certifier().version();
        assert!(head.0 > 0, "some updates committed");
        for i in 0..2 {
            let lag = head.0 - w.replica(i).applied().0;
            assert!(lag <= 30, "replica {i} lags {lag} commits");
        }
    }

    #[test]
    fn malb_world_assigns_groups() {
        let mut w = tiny_world(PolicySpec::malb_sc());
        run_secs(&mut w, 2, 20);
        let snaps = w.group_snapshots();
        assert!(!snaps.is_empty());
        let types: usize = snaps.iter().map(|g| g.types.len()).sum();
        assert_eq!(types, 13, "all 13 TPC-W types grouped");
        let (read, write) = w.disk_bytes();
        let r = w.metrics.finish(w.now(), read, write, w.group_snapshots());
        assert!(r.committed > 10);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut w = tiny_world(PolicySpec::LeastConnections);
            run_secs(&mut w, 2, 15);
            let (read, write) = w.disk_bytes();
            let r = w.metrics.finish(w.now(), read, write, Vec::new());
            (r.committed, r.aborts, read, write)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mix_switch_changes_distribution() {
        let (workload, ordering) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
        let (_, browsing) = tpcw::workload_with_mix(TpcwScale::Small, "browsing");
        let config = ClusterConfig {
            replicas: 2,
            clients: 6,
            think_mean_us: 200_000,
            ..ClusterConfig::paper_default()
        };
        let mut w = World::new(config, workload, vec![ordering, browsing]);
        w.prime();
        w.schedule(SimTime::from_secs(1), Ev::EndWarmup);
        w.schedule(SimTime::from_secs(10), Ev::MixSwitch { mix: 1 });
        w.schedule(SimTime::from_secs(30), Ev::End);
        w.run_to_end();
        // After the switch to read-only-ish browsing, update volume is low:
        // the certifier version grows far slower than completions.
        let (read, write) = w.disk_bytes();
        let r = w.metrics.finish(w.now(), read, write, Vec::new());
        assert!(r.committed > 0);
        assert!(
            (r.updates as f64) < 0.45 * r.committed as f64,
            "updates {} of {}",
            r.updates,
            r.committed
        );
    }
}
