//! Low-overhead SPSC channels for the windowed driver's worker pool.
//!
//! The environment this repo builds in is offline, so the usual crates.io
//! answer (`crossbeam-channel`) is not available; this module is the
//! in-tree stand-in, scoped to exactly what the [`crate::driver`] handoff
//! needs — the same shape vsr-rs uses for its per-replica
//! `crossbeam_channel::Sender` lanes feeding long-lived loops:
//!
//! * **One dedicated SPSC lane per worker.** A bounded ring buffer with a
//!   single producer (the coordinator pushing jobs, or a worker pushing
//!   results) and a single consumer. No shared `mpsc` mutex/queue node
//!   allocation on the hot path: a push is one slot write and one release
//!   store; a pop is one acquire load and one slot read.
//! * **Bounded spin, then `park`.** Windows are tens of microseconds of
//!   work, so a consumer first spins briefly (a handoff that lands within
//!   the spin window costs no syscall at all), then parks. The producer
//!   unconditionally [`std::thread::Thread::unpark`]s its registered
//!   consumer after every push — `unpark` on a running thread is a single
//!   atomic exchange, and the token semantics make the sleep race-free: an
//!   unpark delivered *before* the consumer parks makes that park return
//!   immediately, so a wakeup can never be lost.
//! * **Idle accounting.** Consumers record spins, park episodes, parked
//!   nanoseconds, and busy nanoseconds into shared [`WaitCounters`], so the
//!   driver can prove (and a unit test asserts) that an idle worker costs
//!   ~0 CPU: its idle time is spent parked in the scheduler, not spinning.
//!
//! The `mpsc` path this replaces made every pooled window pay a
//! send/recv/spin storm (see `DriverStats::worker_spins` before/after in
//! `BENCH_driver.json`); the measured handoff numbers live in the README.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;
use std::time::Instant;

/// Spin iterations a consumer burns before parking. Small enough that an
/// idle consumer reaches the scheduler within microseconds; large enough
/// that a handoff racing the check is caught without a syscall.
pub const SPIN_LIMIT: u32 = 128;

/// Shared wait/busy accounting for a pool of consumers (all counters are
/// cumulative across the pool's lifetime).
#[derive(Debug, Default)]
pub struct WaitCounters {
    /// Spin-loop iterations spent waiting for a push.
    pub spins: AtomicU64,
    /// Times a consumer gave up spinning and parked.
    pub parks: AtomicU64,
    /// Wall nanoseconds spent parked (accumulated as parks end).
    pub parked_ns: AtomicU64,
    /// Wall nanoseconds consumers spent doing handed-off work.
    pub busy_ns: AtomicU64,
}

impl WaitCounters {
    /// Fraction of accounted time spent parked rather than working:
    /// `parked / (parked + busy)`. Idle workers must push this toward 1.0
    /// while costing no CPU; the driver surfaces it as the worker idle
    /// fraction.
    pub fn idle_fraction(&self) -> f64 {
        let parked = self.parked_ns.load(Ordering::Relaxed) as f64;
        let busy = self.busy_ns.load(Ordering::Relaxed) as f64;
        if parked + busy == 0.0 {
            0.0
        } else {
            parked / (parked + busy)
        }
    }

    /// Adds `ns` of busy (handed-off work) time.
    pub fn add_busy_ns(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshot `(spins, parks, parked_ns, busy_ns)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.spins.load(Ordering::Relaxed),
            self.parks.load(Ordering::Relaxed),
            self.parked_ns.load(Ordering::Relaxed),
            self.busy_ns.load(Ordering::Relaxed),
        )
    }
}

/// Pads the head/tail indices to their own cache lines so the producer's
/// stores never invalidate the consumer's line (and vice versa).
#[repr(align(64))]
#[derive(Default)]
struct CachePadded<T>(T);

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer reads. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer writes. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Set by either side's `Drop`; a closed ring still drains.
    closed: AtomicBool,
    /// The consumer's thread, registered on its first blocking receive;
    /// the producer unparks it after every push.
    consumer: OnceLock<Thread>,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other; slots are published with release stores and consumed after
// acquire loads, so the payload write happens-before the read.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop the undelivered payloads.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = &self.buf[i & self.mask];
            // SAFETY: slots in head..tail were written and never read.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// The producing half of an SPSC lane. Not clonable: single producer.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
}

/// The consuming half of an SPSC lane. Not clonable: single consumer.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
}

/// Creates a bounded SPSC lane with room for at least `capacity` in-flight
/// values (rounded up to a power of two).
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        consumer: OnceLock::new(),
    });
    (Sender { ring: ring.clone() }, Receiver { ring })
}

/// The consuming side hung up; the value could not be delivered.
#[derive(Debug, PartialEq, Eq)]
pub struct Disconnected<T>(pub T);

impl<T> Sender<T> {
    /// Sends `value`, waking the (possibly parked) consumer.
    ///
    /// The ring is sized for the driver's bounded in-flight window (jobs
    /// per worker per window plus recalls), so a full ring means the
    /// consumer is merely behind: the producer yields until a slot frees
    /// rather than growing an unbounded queue.
    pub fn send(&self, value: T) -> Result<(), Disconnected<T>> {
        let ring = &*self.ring;
        let mut value = value;
        loop {
            if ring.closed.load(Ordering::Acquire) {
                return Err(Disconnected(value));
            }
            let tail = ring.tail.0.load(Ordering::Relaxed);
            let head = ring.head.0.load(Ordering::Acquire);
            if tail - head <= ring.mask {
                let slot = &ring.buf[tail & ring.mask];
                // SAFETY: `tail - head <= mask` leaves this slot free, and
                // only this (single) producer writes slots.
                unsafe { (*slot.get()).write(value) };
                ring.tail.0.store(tail + 1, Ordering::Release);
                if let Some(t) = ring.consumer.get() {
                    t.unpark();
                }
                return Ok(());
            }
            value = self.reclaim(value)?;
        }
    }

    /// Backpressure path: the ring is full. Yield and retry.
    #[cold]
    fn reclaim(&self, value: T) -> Result<T, Disconnected<T>> {
        std::thread::yield_now();
        Ok(value)
    }

    /// Whether the receiving side is gone.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
        if let Some(t) = self.ring.consumer.get() {
            t.unpark();
        }
    }
}

impl<T> Receiver<T> {
    /// Non-blocking pop.
    pub fn try_recv(&self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        let tail = ring.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &ring.buf[head & ring.mask];
        // SAFETY: head < tail means the slot was written (release) and the
        // acquire load above synchronized with it; only this (single)
        // consumer reads slots.
        let value = unsafe { (*slot.get()).assume_init_read() };
        ring.head.0.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Blocking pop: spins [`SPIN_LIMIT`] times, then parks until the
    /// producer's post-push unpark. Returns `None` once the lane is closed
    /// *and* drained. Waiting is accounted into `counters`.
    pub fn recv(&self, counters: &WaitCounters) -> Option<T> {
        self.register();
        let mut spins = 0u64;
        loop {
            for _ in 0..SPIN_LIMIT {
                if let Some(v) = self.try_recv() {
                    if spins > 0 {
                        counters.spins.fetch_add(spins, Ordering::Relaxed);
                    }
                    return Some(v);
                }
                if self.ring.closed.load(Ordering::Acquire) {
                    // Drain: a close races the last pushes.
                    let v = self.try_recv();
                    if spins > 0 {
                        counters.spins.fetch_add(spins, Ordering::Relaxed);
                    }
                    return v;
                }
                spins += 1;
                std::hint::spin_loop();
            }
            counters.parks.fetch_add(1, Ordering::Relaxed);
            let parked = Instant::now();
            std::thread::park();
            counters
                .parked_ns
                .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Registers the calling thread as the lane's consumer so producers can
    /// unpark it. Called automatically by [`Receiver::recv`]; poll-style
    /// consumers (one thread draining several lanes with [`try_recv`] and
    /// parking itself) must call it once per lane before their first park.
    pub fn register(&self) {
        self.ring.consumer.get_or_init(std::thread::current);
    }

    /// Whether the producing side is gone (pending values still drain).
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn values_arrive_in_order_across_wraparound() {
        let (tx, rx) = channel::<u32>(4); // rounds to 4 slots
        let counters = WaitCounters::default();
        for round in 0..10u32 {
            for i in 0..4 {
                tx.send(round * 4 + i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(rx.recv(&counters), Some(round * 4 + i));
            }
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn full_ring_applies_backpressure_without_loss() {
        let (tx, rx) = channel::<u64>(8);
        let counters = Arc::new(WaitCounters::default());
        let consumer = {
            let counters = counters.clone();
            std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Some(v) = rx.recv(&counters) {
                    sum += v;
                }
                sum
            })
        };
        let n = 10_000u64;
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx); // Close; the consumer drains and exits.
        assert_eq!(consumer.join().unwrap(), n * (n - 1) / 2);
    }

    #[test]
    fn recv_parks_until_a_late_send_and_accounts_the_idle_time() {
        let (tx, rx) = channel::<&str>(4);
        let counters = Arc::new(WaitCounters::default());
        let consumer = {
            let counters = counters.clone();
            std::thread::spawn(move || rx.recv(&counters))
        };
        // Let the consumer exhaust its spin budget and park.
        std::thread::sleep(Duration::from_millis(30));
        tx.send("late").unwrap();
        assert_eq!(consumer.join().unwrap(), Some("late"));
        let (_, parks, parked_ns, _) = counters.snapshot();
        assert!(parks >= 1, "the consumer must have parked: {counters:?}");
        assert!(
            parked_ns > 5_000_000,
            "the ~30ms wait must have been spent parked, not spinning: {counters:?}"
        );
    }

    #[test]
    fn spinning_is_bounded_per_wait_episode() {
        let (tx, rx) = channel::<()>(4);
        let counters = Arc::new(WaitCounters::default());
        let consumer = {
            let counters = counters.clone();
            std::thread::spawn(move || {
                let mut n = 0;
                while rx.recv(&counters).is_some() {
                    n += 1;
                }
                n
            })
        };
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(5));
            tx.send(()).unwrap();
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), 3);
        let (spins, parks, _, _) = counters.snapshot();
        // Each wait episode spins at most SPIN_LIMIT times per park cycle;
        // parks + the final close-race check bound the total.
        assert!(
            spins <= (parks + 5) * SPIN_LIMIT as u64,
            "spin waste must stay bounded: {spins} spins over {parks} parks"
        );
        assert!(parks >= 3, "idle gaps must park, not spin: {counters:?}");
    }

    #[test]
    fn close_with_pending_values_still_drains() {
        let (tx, rx) = channel::<u8>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let counters = WaitCounters::default();
        assert_eq!(rx.recv(&counters), Some(1));
        assert_eq!(rx.recv(&counters), Some(2));
        assert_eq!(rx.recv(&counters), None);
        assert_eq!(rx.recv(&counters), None, "closed stays closed");
    }

    #[test]
    fn send_to_a_dropped_receiver_reports_disconnect() {
        let (tx, rx) = channel::<u8>(4);
        drop(rx);
        assert_eq!(tx.send(9), Err(Disconnected(9)));
        assert!(tx.is_closed());
    }

    #[test]
    fn dropping_undelivered_values_runs_their_destructors() {
        let drops = Arc::new(AtomicU64::new(0));
        #[derive(Debug)]
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = channel::<Probe>(8);
        for _ in 0..5 {
            tx.send(Probe(drops.clone())).unwrap();
        }
        let counters = WaitCounters::default();
        drop(rx.recv(&counters)); // One delivered and dropped.
        drop(rx);
        drop(tx);
        assert_eq!(drops.load(Ordering::Relaxed), 5, "no payload leaked");
    }

    #[test]
    fn idle_fraction_reflects_the_counters() {
        let c = WaitCounters::default();
        assert_eq!(c.idle_fraction(), 0.0);
        c.parked_ns.store(900, Ordering::Relaxed);
        c.add_busy_ns(100);
        assert!((c.idle_fraction() - 0.9).abs() < 1e-12);
    }
}
