//! The `partial-replication` scenario: filtered-writeset volume and
//! propagation traffic under a `min_copies` durability constraint.
//!
//! Runs the update-heavy TPC-W ordering mix with the database partially
//! replicated: each relation group lives on `min_copies` holder replicas
//! (see [`crate::placement`]), dispatch routes transactions only to
//! holders, and the certifier ships writeset pages only to holders —
//! non-holders get bare version ticks. The run measures
//! [`crate::metrics::RunResult::propagated_ws_bytes`] (what actually
//! travelled) against [`crate::metrics::RunResult::filtered_ws_bytes`]
//! (what partial replication withheld), the trade the Sutra & Shapiro 2008
//! direction studies.
//!
//! The failover machinery composes: by default a replica crashes mid-run
//! and recovers later on the PR 3 schedule. The crash drops every group it
//! held below `min_copies` live holders, so the cluster re-replicates each
//! onto a survivor via certifier-log backfill — visible in the fault log as
//! [`crate::metrics::FaultKind::Rereplicate`] entries — and recovery then
//! replays only held groups. `min_copies >= replicas` is the degenerate
//! full-replication case and reproduces today's fully-replicated results
//! bit for bit.

use tashkent_sim::SimTime;
use tashkent_workloads::tpcw::{self, TpcwScale};

use crate::config::{PlacementSpec, PolicySpec};
use crate::events::Ev;
use crate::experiment::{Experiment, Scenario, ScenarioKnobs};
use crate::failover::Failover;

/// Partial replication on the TPC-W ordering mix, with the PR 3 failover
/// schedule stressing the durability invariant.
pub struct PartialReplication {
    /// Database scale.
    pub scale: TpcwScale,
    /// Holder copies per relation group when the knobs don't override it
    /// (`ScenarioKnobs::min_copies` wins when set).
    pub min_copies: usize,
    /// Crash (and later recover) the highest-indexed replica mid-run, on
    /// the failover schedule, forcing re-replication.
    pub faults: bool,
}

impl Default for PartialReplication {
    fn default() -> Self {
        PartialReplication {
            scale: TpcwScale::Small,
            min_copies: 2,
            faults: true,
        }
    }
}

impl PartialReplication {
    /// The `min_copies` a run at these knobs uses.
    pub fn effective_min_copies(&self, knobs: &ScenarioKnobs) -> usize {
        knobs.min_copies.unwrap_or(self.min_copies)
    }
}

impl Scenario for PartialReplication {
    fn name(&self) -> &'static str {
        "partial-replication"
    }

    fn summary(&self) -> &'static str {
        "partial replication: min_copies holder sets, holder-only propagation, crash re-replication"
    }

    fn experiment(&self, knobs: &ScenarioKnobs) -> Experiment {
        let (workload, mix) = tpcw::workload_with_mix(self.scale, "ordering");
        let mut config = knobs.config(PolicySpec::LeastConnections);
        config.placement = PlacementSpec::Partial {
            min_copies: self.effective_min_copies(knobs),
        };
        let mut exp = Experiment::new(config, workload, mix)
            .with_window(knobs.warmup_secs, knobs.measured_secs)
            .with_driver(knobs.driver);
        if self.faults && knobs.replicas > 1 {
            let sched = Failover::schedule(knobs);
            let victim = knobs.replicas - 1;
            exp = exp
                .with_injection(
                    SimTime::from_secs(sched.crash_at_secs),
                    Ev::ReplicaCrash { replica: victim },
                )
                .with_injection(
                    SimTime::from_secs(sched.recover_at_secs),
                    Ev::ReplicaRecover { replica: victim },
                );
        }
        exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacementSpec;
    use crate::metrics::FaultKind;
    use crate::run_scenario;

    fn knobs() -> ScenarioKnobs {
        ScenarioKnobs {
            replicas: 4,
            clients_per_replica: 3,
            ..ScenarioKnobs::smoke()
        }
    }

    #[test]
    fn experiment_is_partial_with_the_failover_schedule() {
        let k = knobs();
        let exp = PartialReplication::default().experiment(&k);
        assert_eq!(
            exp.config.placement,
            PlacementSpec::Partial { min_copies: 2 }
        );
        assert_eq!(exp.injections.len(), 2, "crash + recover");
        let quiet = PartialReplication {
            faults: false,
            ..PartialReplication::default()
        }
        .experiment(&k);
        assert!(quiet.injections.is_empty());
        // The knobs' min_copies overrides the scenario default.
        let overridden =
            PartialReplication::default().experiment(&k.clone().with_min_copies(Some(3)));
        assert_eq!(
            overridden.config.placement,
            PlacementSpec::Partial { min_copies: 3 }
        );
    }

    #[test]
    fn crash_triggers_rereplication_and_bytes_are_saved() {
        let r = run_scenario("partial-replication", &knobs()).expect("scenario completes");
        assert!(r.committed > 0, "cluster kept serving");
        assert!(
            r.faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::Rereplicate { .. })),
            "crash must force re-replication: {:?}",
            r.faults
        );
        assert!(
            r.filtered_ws_bytes > 0,
            "partial replication must withhold pages from non-holders"
        );
    }

    #[test]
    fn fewer_copies_propagate_fewer_bytes() {
        let k = knobs();
        let two = run_scenario("partial-replication", &k.clone().with_min_copies(Some(2)))
            .expect("min_copies=2 completes");
        let full = run_scenario(
            "partial-replication",
            &k.clone().with_min_copies(Some(k.replicas)),
        )
        .expect("min_copies=n completes");
        assert!(
            two.propagated_ws_bytes < full.propagated_ws_bytes,
            "2 copies must ship strictly fewer bytes: {} vs {}",
            two.propagated_ws_bytes,
            full.propagated_ws_bytes
        );
        assert_eq!(full.filtered_ws_bytes, 0, "full replication saves nothing");
    }
}
