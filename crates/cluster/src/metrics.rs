//! Run metrics: throughput, response times, disk I/O per transaction.

use tashkent_sim::{Histogram, OnlineStats, SimTime};

use crate::driver::DriverStats;
use crate::trace::TraceSummary;

/// One group → replica-count line, for the paper's Tables 2 and 4.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSnapshot {
    /// Names of the transaction types in the group.
    pub types: Vec<String>,
    /// Number of replicas allocated.
    pub replicas: usize,
    /// Mean bottleneck load over the group's replicas at run end.
    pub load: f64,
}

/// What failed (or healed) at a [`FaultEvent`]'s instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A replica crashed (index).
    ReplicaCrash(usize),
    /// A replica finished log-replay recovery and rejoined dispatch (index).
    ReplicaRecover(usize),
    /// A certifier group elected a new leader after a kill (or after a
    /// revival drained its wait queue). `group` is 0 under unified
    /// certification, where there is exactly one group.
    CertifierFailover {
        /// Certifier-group index (always 0 under unified certification).
        group: usize,
        /// Index of the newly elected leader within the group.
        leader: usize,
    },
    /// Partial replication: relation group `group` was re-replicated onto
    /// replica `to` via certifier-log backfill (a crash dropped it below
    /// `min_copies` live holders, or an explicit `Rereplicate` event fired).
    /// Recorded at backfill *completion* time, carrying the traffic volume,
    /// so cross-driver equivalence covers migration timing and bytes.
    Rereplicate {
        /// Relation-group index in the run's placement map.
        group: usize,
        /// The replica that became a holder.
        to: usize,
        /// Bytes the backfill shipped onto the new holder.
        bytes: u64,
    },
    /// Skew-driven migration: relation group `group` moved from holder
    /// `from` to replica `to` (capped backfill onto the target, then the
    /// donor dropped). Recorded at backfill completion with the traffic
    /// volume, like [`FaultKind::Rereplicate`].
    Migrate {
        /// Relation-group index in the run's placement map.
        group: usize,
        /// The donor holder dropped once the copy completed.
        from: usize,
        /// The replica that became a holder.
        to: usize,
        /// Bytes the backfill shipped onto the new holder.
        bytes: u64,
    },
    /// Post-recovery shrink: replica `from` was dropped from relation group
    /// `group`'s holder set because the group was over-replicated (a
    /// crash-triggered widening plus the crashed holder's recovery left it
    /// above `min_copies`).
    ShrinkHolder {
        /// Relation-group index in the run's placement map.
        group: usize,
        /// The holder dropped from the group.
        from: usize,
    },
    /// The failure detector suspected a replica (index): missed heartbeats
    /// crossed `ClusterConfig::suspect_misses`. Dispatch eligibility drops
    /// and in-flight transactions are retried on survivors, but
    /// re-replication waits for [`FaultKind::ReplicaDead`]. The event's
    /// `injected_at` carries the underlying fault's injection time, so
    /// `at − injected_at` is the detection latency.
    ReplicaSuspected(usize),
    /// The failure detector confirmed a suspected replica dead (index):
    /// missed heartbeats crossed `ClusterConfig::dead_misses`.
    /// Re-replication of under-copied groups begins here.
    ReplicaDead(usize),
    /// A previously suspected (or dead-declared) replica answered a
    /// heartbeat again (index): a false suspicion, or a recovery finishing
    /// its redo replay. The replica rejoins dispatch via a cheap
    /// filter-widen; if it had been declared dead, over-replicated groups
    /// shrink back.
    ReplicaTrusted(usize),
    /// A link partition took effect between `a` and `b` (either may be
    /// [`crate::events::CONTROL_NODE`]): messages between the pair are
    /// dropped until the heal.
    Partition {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// The partitioned link between `a` and `b` healed.
    PartitionHealed {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
}

/// One failure-injection event, as it actually took effect during the run.
///
/// The fault log is part of the run's observable result: cross-driver
/// equivalence includes crash/recover timing, so a driver that reordered
/// failure handling would be caught.
///
/// `at` is when the cluster *acted on* the fault; `injected_at` is when the
/// underlying physical fault happened. With the omniscient oracle the two
/// coincide; with the heartbeat detector a [`FaultKind::ReplicaSuspected`]
/// records `at > injected_at` and the gap is the detection latency —
/// first-class in the equivalence fingerprint via `PartialEq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault took effect (the cluster reacted).
    pub at: SimTime,
    /// When the underlying fault was physically injected (equals `at` for
    /// oracle-observed faults).
    pub injected_at: SimTime,
    /// What happened.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Detection latency: how long the fault went unnoticed before the
    /// cluster reacted (zero for oracle-observed faults).
    pub fn detection_latency_us(&self) -> u64 {
        self.at.saturating_since(self.injected_at)
    }
}

/// Live accounting during a run.
#[derive(Debug, Clone)]
pub struct Metrics {
    window_start: SimTime,
    committed: u64,
    updates: u64,
    aborts: u64,
    retries_exhausted: u64,
    resp: OnlineStats,
    resp_hist: Histogram,
    /// Response-histogram bounds, kept so window resets preserve them.
    hist_bucket_s: f64,
    hist_buckets: usize,
    /// Completion timestamps (for time-series output).
    completions: Vec<SimTime>,
    /// Per-transaction-type response statistics, indexed by type id.
    per_type: Vec<OnlineStats>,
    /// Per-transaction-type certification-abort counts, indexed by type id.
    per_type_aborts: Vec<u64>,
    /// Disk byte counters at the start of the measurement window.
    read_bytes0: u64,
    write_bytes0: u64,
    /// Injected faults as they took effect (whole run, not just the
    /// measurement window).
    faults: Vec<FaultEvent>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates empty metrics with the window starting at time zero and the
    /// historical response-histogram bounds (50 ms buckets to 20 s).
    pub fn new() -> Self {
        Self::with_hist(0.050, 400)
    }

    /// Creates empty metrics with configurable response-histogram bounds
    /// ([`crate::config::ClusterConfig::resp_hist_bucket_s`] /
    /// [`crate::config::ClusterConfig::resp_hist_buckets`]).
    pub fn with_hist(bucket_s: f64, buckets: usize) -> Self {
        Metrics {
            window_start: SimTime::ZERO,
            committed: 0,
            updates: 0,
            aborts: 0,
            retries_exhausted: 0,
            resp: OnlineStats::new(),
            resp_hist: Histogram::new(bucket_s, buckets),
            hist_bucket_s: bucket_s,
            hist_buckets: buckets,
            completions: Vec::new(),
            per_type: Vec::new(),
            per_type_aborts: Vec::new(),
            read_bytes0: 0,
            write_bytes0: 0,
            faults: Vec::new(),
        }
    }

    /// Restarts the measurement window (end of warm-up): clears counters and
    /// snapshots the cluster-wide disk byte counters. The fault log spans
    /// the whole run, so it survives the reset.
    pub fn start_window(&mut self, now: SimTime, read_bytes: u64, write_bytes: u64) {
        let faults = std::mem::take(&mut self.faults);
        *self = Metrics::with_hist(self.hist_bucket_s, self.hist_buckets);
        self.faults = faults;
        self.window_start = now;
        self.read_bytes0 = read_bytes;
        self.write_bytes0 = write_bytes;
    }

    /// Records an injected fault as it takes effect (oracle-observed:
    /// injection and effect coincide).
    pub fn record_fault(&mut self, at: SimTime, kind: FaultKind) {
        self.faults.push(FaultEvent {
            at,
            injected_at: at,
            kind,
        });
    }

    /// Records a *detected* fault: the cluster reacted at `at` to a fault
    /// physically injected at `injected_at` (suspicions, dead declarations,
    /// trust restorations). The gap is the detection latency.
    pub fn record_fault_detected(&mut self, at: SimTime, injected_at: SimTime, kind: FaultKind) {
        self.faults.push(FaultEvent {
            at,
            injected_at,
            kind,
        });
    }

    /// Injected faults so far, in effect order.
    pub fn faults(&self) -> &[FaultEvent] {
        &self.faults
    }

    /// Records a committed (or read-only completed) transaction.
    pub fn record_completion(&mut self, now: SimTime, started: SimTime, is_update: bool) {
        self.record_completion_typed(now, started, is_update, 0);
    }

    /// Records a committed transaction with its type id (for per-type
    /// response breakdowns).
    pub fn record_completion_typed(
        &mut self,
        now: SimTime,
        started: SimTime,
        is_update: bool,
        txn_type: u32,
    ) {
        self.committed += 1;
        if is_update {
            self.updates += 1;
        }
        let resp_s = (now.saturating_since(started)) as f64 / 1e6;
        self.resp.observe(resp_s);
        self.resp_hist.observe(resp_s);
        self.completions.push(now);
        let idx = txn_type as usize;
        if self.per_type.len() <= idx {
            self.per_type.resize_with(idx + 1, OnlineStats::new);
        }
        self.per_type[idx].observe(resp_s);
    }

    /// Records a certification abort of the given transaction type (the
    /// client will retry).
    pub fn record_abort(&mut self, txn_type: u32) {
        self.aborts += 1;
        let idx = txn_type as usize;
        if self.per_type_aborts.len() <= idx {
            self.per_type_aborts.resize(idx + 1, 0);
        }
        self.per_type_aborts[idx] += 1;
    }

    /// Records a transaction whose retries were exhausted.
    pub fn record_gave_up(&mut self) {
        self.retries_exhausted += 1;
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Aborts so far.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Finalizes the run into a [`RunResult`].
    pub fn finish(
        &self,
        now: SimTime,
        read_bytes: u64,
        write_bytes: u64,
        assignments: Vec<GroupSnapshot>,
    ) -> RunResult {
        let window_s = (now.saturating_since(self.window_start) as f64 / 1e6).max(1e-9);
        let committed = self.committed;
        let per_txn = |bytes: u64| {
            if committed == 0 {
                0.0
            } else {
                bytes as f64 / 1024.0 / committed as f64
            }
        };
        RunResult {
            tps: committed as f64 / window_s,
            committed,
            updates: self.updates,
            aborts: self.aborts,
            retries_exhausted: self.retries_exhausted,
            mean_response_s: self.resp.mean(),
            p95_response_s: self.resp_hist.percentile(95.0),
            p99_response_s: self.resp_hist.percentile(99.0),
            read_kb_per_txn: per_txn(read_bytes.saturating_sub(self.read_bytes0)),
            write_kb_per_txn: per_txn(write_bytes.saturating_sub(self.write_bytes0)),
            window_s,
            window_start: self.window_start,
            completions: self.completions.clone(),
            assignments,
            cpu_util: 0.0,
            disk_util: 0.0,
            lb: LbSummary::default(),
            propagated_ws_bytes: 0,
            filtered_ws_bytes: 0,
            migration_bytes: 0,
            migration_us: 0,
            redo_bytes: 0,
            redo_us: 0,
            driver_stats: None,
            trace_summary: None,
            cert_group_commits: Vec::new(),
            faults: self.faults.clone(),
            per_type: {
                let n = self.per_type.len().max(self.per_type_aborts.len());
                (0..n)
                    .map(|i| {
                        let (count, mean, max) = self
                            .per_type
                            .get(i)
                            .map_or((0, 0.0, 0.0), |s| (s.count(), s.mean(), s.max()));
                        let aborts = self.per_type_aborts.get(i).copied().unwrap_or(0);
                        (count, mean, max, aborts)
                    })
                    .collect()
            },
        }
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Committed transactions per second over the measurement window — the
    /// paper's primary metric.
    pub tps: f64,
    /// Committed transactions in the window.
    pub committed: u64,
    /// Committed update transactions.
    pub updates: u64,
    /// Certification aborts.
    pub aborts: u64,
    /// Transactions abandoned after exhausting retries.
    pub retries_exhausted: u64,
    /// Mean client-perceived response time, in seconds.
    pub mean_response_s: f64,
    /// 95th-percentile response time, in seconds.
    pub p95_response_s: f64,
    /// 99th-percentile response time, in seconds (same histogram; its
    /// bounds are configurable via `ClusterConfig::resp_hist_bucket_s` /
    /// `resp_hist_buckets`).
    pub p99_response_s: f64,
    /// Cluster-wide disk read KB per committed transaction (Tables 1/3/5).
    pub read_kb_per_txn: f64,
    /// Cluster-wide disk write KB per committed transaction (Tables 1/3/5).
    pub write_kb_per_txn: f64,
    /// Measurement window length, in seconds.
    pub window_s: f64,
    /// Window start (for time-series bucketing).
    pub window_start: SimTime,
    /// Completion timestamps within the window.
    pub completions: Vec<SimTime>,
    /// Final MALB groupings (empty for other policies).
    pub assignments: Vec<GroupSnapshot>,
    /// Mean CPU utilization across replicas over the window (filled by
    /// `World::finish_result`).
    pub cpu_util: f64,
    /// Mean disk utilization across replicas over the window.
    pub disk_util: f64,
    /// Load-balancer activity over the whole run (filled by
    /// `World::finish_result`).
    pub lb: LbSummary,
    /// Writeset bytes actually shipped to replicas over the measurement
    /// window: pages to holders, version ticks to non-holders (filled by
    /// `World::finish_result`). Under full replication this equals the full
    /// propagation volume.
    pub propagated_ws_bytes: u64,
    /// Writeset bytes partial replication withheld from non-holders over
    /// the window — propagation traffic saved vs full replication (filled
    /// by `World::finish_result`; zero under full replication).
    pub filtered_ws_bytes: u64,
    /// Bytes shipped by placement backfills (crash re-replication and
    /// skew-driven migration) over the whole run (filled by
    /// `World::finish_result`; zero under full replication).
    pub migration_bytes: u64,
    /// Total simulated time backfills were in flight, in µs, summed over
    /// tasks (filled by `World::finish_result`). Under a bandwidth cap this
    /// scales inversely with the cap — the observable cost of migration.
    pub migration_us: u64,
    /// Bytes replayed from the certifier log by recovering replicas over
    /// the whole run (filled by `World::finish_result`). With
    /// `ClusterConfig::checkpoint_lag = 0` this covers only the writesets
    /// missed while down; a non-zero lag adds the `applied − k` redo window
    /// on top, competing with foreground propagation.
    pub redo_bytes: u64,
    /// Total simulated time recovering replicas spent replaying redo
    /// windows, in µs, summed over recoveries (filled by
    /// `World::finish_result`).
    pub redo_us: u64,
    /// Window accounting from the parallel driver (`None` under the
    /// sequential driver; filled by `World::finish_result`). Describes how
    /// the run executed — window sizes, deferral, pooling — and is
    /// therefore excluded from cross-driver equivalence fingerprints.
    pub driver_stats: Option<DriverStats>,
    /// Trace event accounting when tracing was enabled (`None` otherwise;
    /// filled by `ClusterState::finish_result`). Like `driver_stats` it
    /// describes the observation of the run, not its outcome, and is
    /// excluded from cross-driver equivalence fingerprints — the trace
    /// *bytes* have their own, stricter, equality test axis.
    pub trace_summary: Option<TraceSummary>,
    /// Per-certifier-group global commit versions, in group-local commit
    /// order (filled by `World::finish_result`; empty under unified
    /// certification). Part of the observable result: cross-driver
    /// equivalence includes each group's log, so a driver that reordered
    /// sharded certification would be caught.
    pub cert_group_commits: Vec<Vec<u64>>,
    /// Injected faults as they took effect, in order, over the whole run
    /// (crashes, recoveries, certifier failovers).
    pub faults: Vec<FaultEvent>,
    /// Per-type `(count, mean response s, max response s, aborts)` indexed
    /// by type id (types never completed nor aborted may be missing from
    /// the tail).
    pub per_type: Vec<(u64, f64, f64, u64)>,
}

/// Summary of load-balancer reconfiguration activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct LbSummary {
    /// Replica moves performed by MALB.
    pub moves: u64,
    /// Group merges.
    pub merges: u64,
    /// Group splits.
    pub splits: u64,
    /// Wholesale fast re-allocations.
    pub fast_reallocs: u64,
    /// Dispatches that fell back outside the type's group.
    pub fallback: u64,
    /// Whether update filters were installed.
    pub filters_installed: bool,
}

impl RunResult {
    /// Buckets completions into `bucket_s`-second intervals and returns
    /// `(bucket_start_s, tps)` pairs — the Figure 6 time series.
    pub fn timeseries(&self, bucket_s: f64) -> Vec<(f64, f64)> {
        if self.completions.is_empty() {
            return Vec::new();
        }
        let start = self.window_start.as_secs_f64();
        let end = start + self.window_s;
        let nbuckets = ((end - start) / bucket_s).ceil() as usize;
        let mut counts = vec![0u64; nbuckets.max(1)];
        for t in &self.completions {
            let idx = (((t.as_secs_f64() - start) / bucket_s) as usize).min(counts.len() - 1);
            counts[idx] += 1;
        }
        counts
            .iter()
            .enumerate()
            .map(|(i, c)| (start + i as f64 * bucket_s, *c as f64 / bucket_s))
            .collect()
    }

    /// Mean throughput over the `bucket_s`-second buckets starting in
    /// `[from_s, to_s)` — the plateau readings the failover/reconfiguration
    /// figures and tests compare. Returns 0 when no bucket starts in the
    /// window.
    pub fn plateau(&self, bucket_s: f64, from_s: f64, to_s: f64) -> f64 {
        let vals: Vec<f64> = self
            .timeseries(bucket_s)
            .into_iter()
            .filter(|(t, _)| *t >= from_s && *t < to_s)
            .map(|(_, tps)| tps)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Abort rate relative to commit attempts.
    pub fn abort_fraction(&self) -> f64 {
        let attempts = self.committed + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tps_is_committed_over_window() {
        let mut m = Metrics::new();
        m.start_window(SimTime::from_secs(10), 0, 0);
        for i in 0..50 {
            m.record_completion(
                SimTime::from_secs(10 + i % 20),
                SimTime::from_secs(9),
                false,
            );
        }
        let r = m.finish(SimTime::from_secs(35), 0, 0, Vec::new());
        assert_eq!(r.committed, 50);
        assert!((r.tps - 2.0).abs() < 1e-9, "tps {}", r.tps);
    }

    #[test]
    fn disk_kb_per_txn_uses_window_delta() {
        let mut m = Metrics::new();
        m.start_window(SimTime::ZERO, 1024 * 100, 1024 * 10);
        for _ in 0..10 {
            m.record_completion(SimTime::from_secs(1), SimTime::ZERO, true);
        }
        let r = m.finish(SimTime::from_secs(10), 1024 * 820, 1024 * 130, Vec::new());
        assert!((r.read_kb_per_txn - 72.0).abs() < 1e-9);
        assert!((r.write_kb_per_txn - 12.0).abs() < 1e-9);
    }

    #[test]
    fn response_stats_accumulate() {
        let mut m = Metrics::new();
        m.start_window(SimTime::ZERO, 0, 0);
        m.record_completion(SimTime::from_millis(1500), SimTime::from_millis(500), false);
        m.record_completion(SimTime::from_millis(2500), SimTime::from_millis(500), false);
        let r = m.finish(SimTime::from_secs(10), 0, 0, Vec::new());
        assert!((r.mean_response_s - 1.5).abs() < 1e-9);
        assert!(r.p95_response_s >= 1.9);
    }

    #[test]
    fn start_window_resets_counts() {
        let mut m = Metrics::new();
        m.record_completion(SimTime::from_secs(1), SimTime::ZERO, false);
        m.record_abort(0);
        m.start_window(SimTime::from_secs(60), 0, 0);
        assert_eq!(m.committed(), 0);
        assert_eq!(m.aborts(), 0);
    }

    #[test]
    fn start_window_keeps_configured_histogram_bounds() {
        // 1 ms buckets up to 10 ms: a 5 ms response lands mid-histogram,
        // which the default 50 ms buckets could not resolve.
        let mut m = Metrics::with_hist(0.001, 10);
        m.start_window(SimTime::from_secs(1), 0, 0);
        for _ in 0..100 {
            m.record_completion(SimTime::from_millis(1005), SimTime::from_secs(1), false);
        }
        let r = m.finish(SimTime::from_secs(2), 0, 0, Vec::new());
        assert!(
            r.p95_response_s > 0.004 && r.p95_response_s < 0.007,
            "p95 {} must resolve at 1 ms granularity",
            r.p95_response_s
        );
        assert!(r.p99_response_s >= r.p95_response_s);
    }

    #[test]
    fn per_type_aborts_are_counted() {
        let mut m = Metrics::new();
        m.start_window(SimTime::ZERO, 0, 0);
        m.record_completion_typed(SimTime::from_secs(1), SimTime::ZERO, true, 0);
        m.record_abort(2);
        m.record_abort(2);
        m.record_abort(0);
        let r = m.finish(SimTime::from_secs(2), 0, 0, Vec::new());
        assert_eq!(r.aborts, 3);
        assert_eq!(r.per_type.len(), 3, "padded to the aborting type");
        assert_eq!(r.per_type[0].0, 1);
        assert_eq!(r.per_type[0].3, 1);
        assert_eq!(r.per_type[1].3, 0);
        assert_eq!(r.per_type[2], (0, 0.0, 0.0, 2), "abort-only type");
    }

    #[test]
    fn timeseries_buckets_completions() {
        let mut m = Metrics::new();
        m.start_window(SimTime::ZERO, 0, 0);
        // 30 completions in the first 30 s, none after.
        for i in 0..30 {
            m.record_completion(SimTime::from_secs(i), SimTime::ZERO, false);
        }
        let r = m.finish(SimTime::from_secs(60), 0, 0, Vec::new());
        let ts = r.timeseries(30.0);
        assert_eq!(ts.len(), 2);
        assert!((ts[0].1 - 1.0).abs() < 1e-9, "first bucket {:?}", ts[0]);
        assert_eq!(ts[1].1, 0.0);
    }

    #[test]
    fn plateau_averages_buckets_in_window() {
        let mut m = Metrics::new();
        m.start_window(SimTime::ZERO, 0, 0);
        // 2 tps for 10 s, then 4 tps for 10 s.
        for i in 0..20 {
            m.record_completion(SimTime::from_millis(i * 500), SimTime::ZERO, false);
        }
        for i in 0..40 {
            m.record_completion(SimTime::from_millis(10_000 + i * 250), SimTime::ZERO, false);
        }
        let r = m.finish(SimTime::from_secs(20), 0, 0, Vec::new());
        assert!((r.plateau(5.0, 0.0, 10.0) - 2.0).abs() < 1e-9);
        assert!((r.plateau(5.0, 10.0, 20.0) - 4.0).abs() < 1e-9);
        assert_eq!(r.plateau(5.0, 50.0, 60.0), 0.0, "empty window is 0");
    }

    #[test]
    fn abort_fraction_bounds() {
        let mut m = Metrics::new();
        m.start_window(SimTime::ZERO, 0, 0);
        m.record_completion(SimTime::from_secs(1), SimTime::ZERO, true);
        m.record_abort(0);
        let r = m.finish(SimTime::from_secs(2), 0, 0, Vec::new());
        assert!((r.abort_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn detected_faults_carry_injection_time() {
        let mut m = Metrics::new();
        m.record_fault(SimTime::from_secs(1), FaultKind::ReplicaCrash(2));
        m.record_fault_detected(
            SimTime::from_secs(3),
            SimTime::from_secs(1),
            FaultKind::ReplicaSuspected(2),
        );
        // Oracle faults have zero detection latency; detected faults carry
        // the inject → react gap.
        assert_eq!(m.faults()[0].detection_latency_us(), 0);
        assert_eq!(m.faults()[1].detection_latency_us(), 2_000_000);
        // The window reset preserves injection times along with the log.
        m.start_window(SimTime::from_secs(10), 0, 0);
        let r = m.finish(SimTime::from_secs(20), 0, 0, Vec::new());
        assert_eq!(r.faults.len(), 2);
        assert_eq!(r.faults[1].injected_at, SimTime::from_secs(1));
        assert_eq!(r.faults[1].at, SimTime::from_secs(3));
    }

    #[test]
    fn empty_run_is_safe() {
        let m = Metrics::new();
        let r = m.finish(SimTime::from_secs(1), 100, 100, Vec::new());
        assert_eq!(r.tps, 0.0);
        assert_eq!(r.read_kb_per_txn, 0.0);
        assert!(r.timeseries(10.0).is_empty());
        assert_eq!(r.abort_fraction(), 0.0);
    }
}
