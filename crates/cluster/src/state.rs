//! The assembled cluster state, independent of any driver.
//!
//! [`ClusterState`] owns the per-component handlers — one
//! [`ClusterNode`] per replica, the [`CertifierLink`], the [`BalancerCtl`] —
//! plus the cross-cutting state no single component owns: the client pool,
//! in-flight transaction metadata, the experiment RNG, and metrics. It
//! exposes exactly one mutation entry point, [`ClusterState::handle`], which
//! routes a timestamped [`Ev`] to its component handler and schedules the
//! consequences into whatever [`EventQueue`] the driver hands it.
//!
//! What `ClusterState` deliberately does **not** own is the event loop: how
//! events are popped, in what order batches execute, and on which threads is
//! the [`crate::driver`] layer's business. Any driver that delivers the
//! same events in the same order observes bit-identical state evolution —
//! this is the seam the sequential and parallel drivers (and future async
//! runtimes) plug into.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use tashkent_certifier::{CertShard, Certifier, ShardCheck};
use tashkent_core::{LoadBalancer, ReplicaId, ResourceLoad};
use tashkent_engine::{TxnExecutor, TxnId, TxnTypeId, Version};
use tashkent_replica::{ReplicaNode, UpdateFilter};
use tashkent_sim::{EventQueue, SimRng, SimTime};
use tashkent_storage::RelationId;
use tashkent_workloads::{ClientPool, Mix, Workload};

use crate::components::{BalancerCtl, CertifierLink, ClusterNode, HealthTransition, ReplicaHealth};
use crate::config::{CertifierSharding, ClusterConfig, PlacementSpec};
use crate::driver::DriverStats;
use crate::events::{Ev, CONTROL_NODE};
use crate::metrics::{FaultKind, GroupSnapshot, Metrics};
use crate::placement::{CertMap, PlacementMap, ReplicationPlanner};
use crate::trace::{TraceData, Tracer};

/// Bookkeeping for one in-flight transaction.
struct TxnMeta {
    client: usize,
    txn_type: TxnTypeId,
    /// First submission time (retries keep the original arrival).
    arrived: SimTime,
    retries: u32,
    is_update: bool,
    /// Replica the transaction was dispatched to — a crash there orphans
    /// the transaction and the client retries elsewhere.
    replica: usize,
    /// The client stopped waiting (request timeout or suspicion sweep) and
    /// was already retried elsewhere; the transaction may still be running
    /// on its replica, so the meta lingers only to free the Gatekeeper slot
    /// when the stale completion arrives — no client-side effects then.
    abandoned: bool,
}

/// Bytes shipped per [`Ev::BackfillChunk`] under a bandwidth cap. Small
/// enough that foreground propagation interleaves with a long copy, large
/// enough that the event count stays negligible next to transaction traffic.
const BACKFILL_CHUNK_BYTES: u64 = 64 * 1024;

/// The minimum bottleneck-utilization gap between the busiest holder and
/// the idlest non-holder before the rebalancer migrates a hot group —
/// hysteresis so balanced clusters don't churn placement.
const MIGRATION_MIN_IMBALANCE: f64 = 0.10;

/// One in-flight certifier-log backfill onto a target replica: a durability
/// re-replication (crash or explicit [`Ev::Rereplicate`]) or, when
/// `drop_source` is set, a skew-driven migration that sheds the donor once
/// the copy completes. Tasks are append-only for the run — `Ev::BackfillChunk
/// { task }` indexes into [`ClusterState::backfills`] — and a crash of the
/// target cancels the task rather than removing it.
struct BackfillTask {
    group: usize,
    target: usize,
    /// Relations being copied (the ones the target did not already hold).
    rels: BTreeSet<RelationId>,
    /// Next certifier-log index to ship.
    next: usize,
    /// Log index the copy must reach — fixed at task creation; later
    /// versions arrive through normal propagation (the filter is already
    /// widened), so a busy cluster cannot push completion out forever.
    upto: usize,
    /// Bytes shipped so far.
    bytes: u64,
    started: SimTime,
    done: bool,
    cancelled: bool,
    /// Migration donor: dropped from the holder set at completion (unless
    /// that would leave the group under-replicated).
    drop_source: Option<usize>,
}

/// Components plus cross-cutting transaction/client/metrics state — the
/// whole cluster, minus the event loop that drives it.
///
/// Replica nodes are stored as `Option` slots so a driver can *lease* a node
/// to a worker thread for a lookahead window ([`ClusterState::take_node`])
/// and return it afterwards ([`ClusterState::put_node`]). Every handler
/// expects the nodes it touches to be present; drivers uphold that by only
/// handling events between windows.
pub struct ClusterState {
    /// Configuration.
    pub config: ClusterConfig,
    /// The workload (schema + transaction types).
    pub workload: Workload,
    /// Mixes selectable via `MixSwitch` (index 0 active initially).
    pub mixes: Vec<Mix>,
    active_mix: usize,
    balancer: BalancerCtl,
    /// Boxed so a driver can lease a node to a worker thread by moving a
    /// pointer, not the node's whole inline state.
    nodes: Vec<Option<Box<ClusterNode>>>,
    certifier: CertifierLink,
    clients: ClientPool,
    rng: SimRng,
    next_txn: u64,
    txns: HashMap<TxnId, TxnMeta>,
    /// Partial replication: where every relation group lives. `None` under
    /// full replication (every replica holds everything). When set, the
    /// placement filter is authoritative on every node — it subsumes §3
    /// update filtering (holder sets are the "keep current" lists).
    placement: Option<PlacementMap>,
    /// Every backfill started this run, live and finished (event payloads
    /// index into it, so entries are never removed).
    backfills: Vec<BackfillTask>,
    /// Per-relation-group dispatch counts since the last migration — the
    /// skew signal the rebalancer acts on. Empty under full replication.
    group_load: Vec<u64>,
    /// Total bytes shipped by completed backfills (re-replication and
    /// migration) and total in-flight time, for [`crate::metrics::RunResult`].
    migration_bytes: u64,
    migration_us: u64,
    /// Injected network partitions, as normalized `(min, max)` node pairs
    /// ([`CONTROL_NODE`] stands for the balancer/certifier side). Messages
    /// between partitioned pairs — heartbeats, certification traffic,
    /// propagation pulls — are dropped until the matching [`Ev::LinkHeal`].
    partitions: Vec<(usize, usize)>,
    /// When the physical fault behind a replica's unreachability was
    /// injected (crash or control-link partition) — the epoch detection
    /// latency is measured from. Cleared when the detector re-trusts the
    /// replica.
    fault_started: Vec<Option<SimTime>>,
    /// Until this instant a recovering replica is busy replaying the redo
    /// window and does not answer heartbeats — with the detector on it
    /// rejoins dispatch only at the *Trusted* transition after replay.
    recovering_until: Vec<SimTime>,
    /// Recovery replay totals: certifier-log bytes re-shipped at
    /// [`Ev::ReplicaRecover`] (the checkpoint-lag redo window plus whatever
    /// the replica missed while down) and the replay time, for
    /// [`crate::metrics::RunResult`].
    redo_bytes: u64,
    redo_us: u64,
    /// Metrics accumulator.
    pub metrics: Metrics,
    /// Run tracer (disabled unless the config sets an exporter path). All
    /// handler-side emissions happen here, on the coordinator, in exact
    /// event pop order — worker-executed steps buffer on their node and the
    /// driver replays them at the same slots — so the trace is byte-equal
    /// across drivers.
    pub tracer: Tracer,
    /// Window accounting deposited by the driver at the end of the run
    /// (`None` under the sequential driver). Carried into
    /// [`crate::metrics::RunResult::driver_stats`]; deliberately *not* part
    /// of the cross-driver equivalence fingerprint — it describes how the
    /// run was executed, not what it computed.
    pub driver_stats: Option<DriverStats>,
    /// CPU/disk busy totals at the start of the measurement window.
    busy0: (u64, u64),
    /// Propagation byte counters `(sent, saved)` at the start of the
    /// measurement window.
    prop0: (u64, u64),
    window_started: SimTime,
    ended: bool,
}

impl ClusterState {
    /// Builds the cluster from a configuration, workload, and mixes (the
    /// first mix is active at start).
    ///
    /// # Panics
    ///
    /// Panics if `mixes` is empty.
    pub fn new(config: ClusterConfig, workload: Workload, mixes: Vec<Mix>) -> Self {
        assert!(!mixes.is_empty(), "cluster needs at least one mix");
        let mut rng = SimRng::seed_from(config.seed);
        let mut balancer = BalancerCtl::build(&config, &workload, &mixes[0]);
        let mut nodes: Vec<Option<Box<ClusterNode>>> = (0..config.replicas)
            .map(|id| {
                Some(Box::new(ClusterNode::new(
                    id,
                    ReplicaNode::new(
                        workload.catalog.clone(),
                        config.replica_config(),
                        rng.fork(),
                    ),
                    config.lan_hop_us,
                )))
            })
            .collect();
        // Partial replication: plan the group → holder-set assignment, then
        // thread it through the layers — placement filters on the nodes (the
        // "must not receive" tier) and per-type eligibility masks on the
        // balancer (dispatch routes only to holders).
        let placement = match config.placement {
            PlacementSpec::Full => None,
            PlacementSpec::Partial { min_copies } => {
                Some(ReplicationPlanner::new(min_copies).plan(&workload, config.replicas))
            }
        };
        if let Some(p) = &placement {
            for (r, slot) in nodes.iter_mut().enumerate() {
                slot.as_mut()
                    .expect("nodes are present at build time")
                    .set_filter(p.filter_for(r));
            }
            balancer.set_type_eligibility(Some(p.type_masks(workload.types.len())));
        }
        // Sharded certification: derive the relation → certifier-group map
        // from the workload, stamp it onto every node (so outgoing
        // `CertifySend`s carry their touched-group bitmask), and build the
        // sharded link around it.
        let cert_map = match config.certifier_sharding {
            CertifierSharding::Unified => None,
            CertifierSharding::Sharded { max_groups } => {
                Some(Arc::new(CertMap::build(&workload, max_groups)))
            }
        };
        let certifier = match &cert_map {
            Some(map) => {
                for slot in nodes.iter_mut() {
                    slot.as_mut()
                        .expect("nodes are present at build time")
                        .set_cert_map(Arc::clone(map));
                }
                CertifierLink::new_sharded(
                    config.certifier,
                    config.replicas,
                    config.lan_hop_us,
                    Arc::clone(map),
                )
            }
            None => CertifierLink::new(config.certifier, config.replicas, config.lan_hop_us),
        };
        let clients = ClientPool::new(config.clients, config.think_mean_us);
        let group_load = placement
            .as_ref()
            .map(|p| vec![0; p.group_count()])
            .unwrap_or_default();
        let tracer = Tracer::new(&config.trace);
        if tracer.on() {
            for slot in nodes.iter_mut() {
                slot.as_mut()
                    .expect("nodes are present at build time")
                    .set_tracing(true);
            }
        }
        let metrics = Metrics::with_hist(config.resp_hist_bucket_s, config.resp_hist_buckets);
        ClusterState {
            balancer,
            nodes,
            certifier,
            clients,
            rng,
            next_txn: 0,
            txns: HashMap::new(),
            placement,
            backfills: Vec::new(),
            group_load,
            migration_bytes: 0,
            migration_us: 0,
            partitions: Vec::new(),
            fault_started: vec![None; config.replicas],
            recovering_until: vec![SimTime::ZERO; config.replicas],
            redo_bytes: 0,
            redo_us: 0,
            metrics,
            tracer,
            driver_stats: None,
            active_mix: 0,
            config,
            workload,
            mixes,
            busy0: (0, 0),
            prop0: (0, 0),
            window_started: SimTime::ZERO,
            ended: false,
        }
    }

    /// Schedules the initial events into `queue`: staggered client arrivals,
    /// per-replica maintenance, and balancer ticks.
    pub fn prime(&mut self, queue: &mut EventQueue<Ev>) {
        for client in 0..self.config.clients {
            let delay = self.rng.exp_micros(self.config.think_mean_us.max(1));
            queue.schedule(SimTime::from_micros(delay), Ev::ClientArrive { client });
        }
        for replica in 0..self.config.replicas {
            queue.schedule(
                SimTime::from_millis(250),
                Ev::Maintenance { replica, round: 0 },
            );
        }
        queue.schedule(SimTime::from_secs(1), Ev::LbTick);
        // Skew-driven placement rebalancing only makes sense when placement
        // is actually partial — under full replication (or the degenerate
        // all-holders plan) there is nothing to migrate.
        if let (Some(period), Some(p)) = (self.config.migration_period, &self.placement) {
            if !p.is_full() {
                queue.schedule(SimTime::ZERO + period.as_micros(), Ev::RebalanceTick);
            }
        }
        // Heartbeat failure detection: each round's pings pay their LAN
        // round trip before the balancer reads the answers, so the first
        // tick lands one period plus one RTT in.
        if self.config.heartbeat_period_us > 0 {
            queue.schedule(
                SimTime::from_micros(self.config.heartbeat_period_us + 2 * self.config.lan_hop_us),
                Ev::HeartbeatTick,
            );
        }
    }

    /// Whether the heartbeat failure detector runs. When it does, *no*
    /// handler acts on oracle crash knowledge: dispatch eligibility,
    /// in-flight retries, and re-replication all change only through the
    /// detector's `Live → Suspected → Dead` transitions.
    fn detection_on(&self) -> bool {
        self.config.heartbeat_period_us > 0
    }

    /// Whether a partition currently severs the `a`–`b` link.
    fn partitioned(&self, a: usize, b: usize) -> bool {
        self.partitions.contains(&(a.min(b), a.max(b)))
    }

    /// Whether `origin`'s link to the control side (balancer + certifier) is
    /// partitioned — its certification sends never arrive. The parallel
    /// driver consults this before taking the pooled certification
    /// fast path, so a dropped send demotes to the deferred handler.
    pub fn origin_partitioned(&self, origin: usize) -> bool {
        self.partitioned(origin, CONTROL_NODE)
    }

    /// The detector's belief about `replica` (always `Live` with the
    /// detector off).
    pub fn replica_health(&self, replica: usize) -> ReplicaHealth {
        self.balancer.health(replica)
    }

    /// Whether `replica` is a sane re-replication participant: physically
    /// up *and* believed live by the detector. With the detector off the
    /// belief is always `Live`, so this reduces to `is_up()` — bit-exact
    /// with the oracle semantics.
    fn believed_live(&self, replica: usize) -> bool {
        self.node(replica).is_up() && self.balancer.health(replica) == ReplicaHealth::Live
    }

    /// Capped exponential client backoff for retry number `retries`.
    fn backoff_us(&self, retries: u32) -> u64 {
        self.config
            .client_backoff_base_us
            .saturating_mul(1u64 << retries.min(20))
            .min(self.config.client_backoff_cap_us)
    }

    /// Whether the `End` event has fired.
    pub fn ended(&self) -> bool {
        self.ended
    }

    /// One-way LAN latency between components, in µs — the minimum
    /// cross-component event latency drivers may exploit as lookahead.
    pub fn lan_hop_us(&self) -> u64 {
        self.config.lan_hop_us
    }

    /// Leases replica `idx` out of the state (to a driver worker).
    ///
    /// # Panics
    ///
    /// Panics if the node is already leased out.
    pub fn take_node(&mut self, idx: usize) -> Box<ClusterNode> {
        self.nodes[idx]
            .take()
            .expect("node already leased to a driver shard")
    }

    /// Returns a leased node.
    pub fn put_node(&mut self, idx: usize, node: Box<ClusterNode>) {
        debug_assert!(
            self.nodes[idx].is_none(),
            "returning a node that was never leased"
        );
        self.nodes[idx] = Some(node);
    }

    /// Whether replica `idx`'s node is currently leased out to a driver
    /// shard (its slot is empty). Drivers holding leases across window
    /// boundaries use this to audit their recall bookkeeping.
    pub fn node_leased(&self, idx: usize) -> bool {
        self.nodes[idx].is_none()
    }

    /// How many replica nodes are currently leased out to driver shards.
    pub fn leased_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_none()).count()
    }

    fn node_mut(&mut self, idx: usize) -> &mut ClusterNode {
        self.nodes[idx]
            .as_mut()
            .expect("node leased to a driver shard")
    }

    /// Cluster-wide disk byte counters `(read, write)`.
    pub fn disk_bytes(&self) -> (u64, u64) {
        let mut read = 0;
        let mut write = 0;
        for n in self.present_nodes() {
            let s = n.replica().disk_stats();
            read += s.read_bytes();
            write += s.write_bytes();
        }
        (read, write)
    }

    fn present_nodes(&self) -> impl Iterator<Item = &ClusterNode> {
        self.nodes
            .iter()
            .map(|n| &**n.as_ref().expect("node leased to a driver shard"))
    }

    /// Access a replica (tests and metrics).
    pub fn replica(&self, idx: usize) -> &ReplicaNode {
        self.node(idx).replica()
    }

    /// Access a cluster node handler (failure injection, alternate drivers).
    pub fn node(&self, idx: usize) -> &ClusterNode {
        self.nodes[idx]
            .as_ref()
            .expect("node leased to a driver shard")
    }

    /// Number of replica slots (leased or present).
    pub fn replica_count(&self) -> usize {
        self.nodes.len()
    }

    /// Mutable node access (failure injection, alternate drivers).
    pub fn node_access_mut(&mut self, idx: usize) -> &mut ClusterNode {
        self.node_mut(idx)
    }

    /// The balancer (tests and metrics).
    pub fn balancer(&self) -> &LoadBalancer {
        self.balancer.inner()
    }

    /// The certifier (tests and metrics).
    pub fn certifier(&self) -> &Certifier {
        self.certifier.inner()
    }

    /// The certifier group's membership and leadership (tests and metrics).
    pub fn certifier_group(&self) -> &tashkent_certifier::CertifierGroup {
        self.certifier.group()
    }

    /// The full certifier link (tests and alternate drivers).
    pub fn cert_link(&self) -> &CertifierLink {
        &self.certifier
    }

    /// Number of certifier groups (0 under unified certification).
    pub fn cert_group_count(&self) -> usize {
        self.certifier.cert_group_count()
    }

    /// Group `g`'s `gsnap` for a snapshot version (sharded certification;
    /// see [`CertifierLink::cert_gsnap`]).
    pub fn cert_gsnap(&self, g: usize, snapshot: Version) -> u64 {
        self.certifier.cert_gsnap(g, snapshot)
    }

    /// Leases certifier group `g`'s shard out (to a driver worker).
    pub fn take_cert_shard(&mut self, g: usize) -> Box<CertShard> {
        self.certifier.take_cert_shard(g)
    }

    /// Returns a leased certification shard.
    pub fn put_cert_shard(&mut self, g: usize, shard: Box<CertShard>) {
        self.certifier.put_cert_shard(g, shard)
    }

    /// Replays the coordinator decide for a worker-executed single-group
    /// certification check (see [`CertifierLink::certify_decide`]).
    pub fn certify_decide(
        &mut self,
        group: usize,
        replica: usize,
        txn: TxnId,
        ws: tashkent_engine::Writeset,
        check: ShardCheck,
        queue: &mut EventQueue<Ev>,
    ) {
        self.certifier
            .certify_decide(group, replica, txn, ws, check, &mut self.tracer, queue)
    }

    /// Total CPU and disk busy microseconds across replicas.
    fn busy_totals(&self) -> (u64, u64) {
        let mut cpu = 0;
        let mut disk = 0;
        for n in self.present_nodes() {
            cpu += n.replica().cpu_busy_us();
            disk += n.replica().disk_stats().busy_us;
        }
        (cpu, disk)
    }

    /// Finalizes the run into a [`crate::metrics::RunResult`], including
    /// mean CPU/disk utilizations over the measurement window.
    pub fn finish_result(&self, now: SimTime) -> crate::metrics::RunResult {
        let (read, write) = self.disk_bytes();
        let snaps = self.group_snapshots();
        let mut result = self.metrics.finish(now, read, write, snaps);
        let (cpu, disk) = self.busy_totals();
        let window_us = (now.saturating_since(self.window_started) as f64).max(1.0)
            * self.config.replicas as f64;
        result.cpu_util = (cpu.saturating_sub(self.busy0.0)) as f64 / window_us;
        result.disk_util = (disk.saturating_sub(self.busy0.1)) as f64 / window_us;
        let stats = self.balancer.inner().stats();
        result.lb = crate::metrics::LbSummary {
            moves: stats.moves,
            merges: stats.merges,
            splits: stats.splits,
            fast_reallocs: stats.fast_reallocs,
            fallback: stats.fallback,
            filters_installed: self.balancer.inner().filters_installed(),
        };
        let (sent, saved) = self.certifier.propagation_bytes();
        result.propagated_ws_bytes = sent.saturating_sub(self.prop0.0);
        result.filtered_ws_bytes = saved.saturating_sub(self.prop0.1);
        result.driver_stats = self.driver_stats;
        result.cert_group_commits = self.certifier.cert_group_commits();
        result.migration_bytes = self.migration_bytes;
        result.migration_us = self.migration_us;
        result.redo_bytes = self.redo_bytes;
        result.redo_us = self.redo_us;
        result.trace_summary = self.tracer.summary();
        result
    }

    /// The partial-replication placement map, when the cluster runs one
    /// (`None` under full replication).
    pub fn placement(&self) -> Option<&PlacementMap> {
        self.placement.as_ref()
    }

    /// Current group → replica assignments with type names resolved.
    pub fn group_snapshots(&self) -> Vec<GroupSnapshot> {
        let loads = self.balancer.inner().loads();
        self.balancer
            .inner()
            .assignments()
            .into_iter()
            .map(|(types, replicas)| GroupSnapshot {
                types: types
                    .iter()
                    .map(|t| self.workload.type_name(*t).to_string())
                    .collect(),
                replicas: replicas.len(),
                load: if replicas.is_empty() {
                    0.0
                } else {
                    replicas
                        .iter()
                        .map(|r| loads[r.0].bottleneck())
                        .sum::<f64>()
                        / replicas.len() as f64
                },
            })
            .collect()
    }

    /// Routes one event to its component handler. Every arm is a thin
    /// delegate; the lifecycle lives in [`crate::components`].
    ///
    /// Drivers must deliver events in nondecreasing `(timestamp, FIFO)`
    /// order with all nodes present; under that contract the state evolution
    /// is identical for every driver.
    ///
    /// The routing here is the ground truth for [`Ev::footprint`], which
    /// the parallel driver's window formation relies on: an arm that
    /// starts touching replica nodes its event's footprint does not claim
    /// (another replica's node, or any node for a `Global`-only event that
    /// was reclassified) must update `footprint()` in lock-step, or the
    /// driver will defer an event past shard work it can influence.
    pub fn handle(&mut self, now: SimTime, ev: Ev, queue: &mut EventQueue<Ev>) {
        match ev {
            Ev::ClientArrive { client } => self.on_client_arrive(now, client, queue),
            Ev::StepTxn { replica, txn } => {
                self.node_mut(replica).on_step(now, txn, queue);
                if self.tracer.on() {
                    let buffered = self.node_mut(replica).take_trace();
                    self.tracer.replay(buffered);
                }
            }
            Ev::CertifySend {
                replica,
                txn,
                ws,
                groups,
            } => {
                if self.partitioned(replica, CONTROL_NODE) {
                    // The writeset never reaches the certifier. The
                    // replica-side proxy sees the connection drop and frees
                    // the Gatekeeper slot (the executor already left at
                    // ReadyToCommit); the client is rescued later by its
                    // timeout or the suspicion sweep, unless it already gave
                    // up waiting — then this was the transaction's last
                    // event and the meta can go too.
                    self.node_mut(replica).on_finish(now, false, queue);
                    if self.txns.get(&txn).is_some_and(|m| m.abandoned) {
                        self.txns.remove(&txn);
                    }
                } else {
                    self.certifier
                        .on_send(now, replica, txn, ws, groups, &mut self.tracer, queue)
                }
            }
            Ev::CertifyReturn {
                replica,
                txn,
                version,
            } => self.on_certify_return(now, replica, txn, version, queue),
            Ev::TxnComplete {
                replica,
                txn,
                committed,
            } => self.on_txn_complete(now, replica, txn, committed, queue),
            Ev::TxnRetry {
                client,
                txn_type,
                arrived,
                retries,
            } => self.submit_txn(now, client, txn_type, arrived, retries, queue),
            Ev::Maintenance { replica, round } => self.on_maintenance(now, replica, round, queue),
            Ev::LbTick => {
                let (filters, moves) = self.balancer.on_tick(now, queue);
                self.tracer.emit(
                    now,
                    TraceData::Lb {
                        filters: filters.len(),
                        moves,
                    },
                );
                for (replica, filter) in filters {
                    // Under partial replication, placement *subsumes* §3
                    // update filtering: the holder sets already are the
                    // "keep current" lists with an explicit `min_copies`,
                    // and MALB's lists are placement-unaware — derived from
                    // its own unit assignment, they may omit relations this
                    // replica holds for durability. Narrowing below the
                    // held set would silently break the invariant (a live
                    // holder dropping its own group's pages), and widening
                    // would apply items the certifier never shipped here.
                    // The placement filter therefore stays authoritative.
                    // The degenerate all-holders placement imposes no
                    // constraint (it *is* full replication), so there §3
                    // filtering applies unchanged — bit for bit.
                    let effective = match &self.placement {
                        Some(p) if !p.is_full() => p.filter_for(replica.0),
                        _ => filter,
                    };
                    self.node_mut(replica.0).set_filter(effective);
                }
            }
            Ev::Rereplicate { group } => {
                self.rereplicate_group(now, group, queue);
            }
            Ev::BackfillChunk { task } => self.on_backfill_chunk(now, task, queue),
            Ev::BackfillDone { task } => self.on_backfill_done(now, task),
            Ev::RebalanceTick => self.on_rebalance_tick(now, queue),
            Ev::MixSwitch { mix } => self.active_mix = mix.min(self.mixes.len() - 1),
            Ev::FreezeLb => self.balancer.freeze(),
            Ev::ReplicaCrash { replica } => self.on_replica_crash(now, replica, queue),
            Ev::ReplicaRecover { replica } => self.on_replica_recover(now, replica),
            Ev::CertifierKill { group, member } => {
                if let Some(tashkent_certifier::GroupEvent::FailedOver { leader, .. }) =
                    self.certifier.on_kill(now, group, member)
                {
                    self.metrics.record_fault(
                        now,
                        crate::metrics::FaultKind::CertifierFailover { group, leader },
                    );
                    if self.tracer.on() {
                        self.tracer.emit(
                            now,
                            TraceData::Fault {
                                desc: format!("certifier failover group={group} leader={leader}"),
                            },
                        );
                    }
                }
            }
            Ev::CertifierRestart { group, member } => {
                if let Some(tashkent_certifier::GroupEvent::FailedOver { leader, .. }) = self
                    .certifier
                    .on_restart(now, group, member, &mut self.tracer, queue)
                {
                    // A revival election is a failover too: the restarted
                    // member pays the delay before draining the wait queue.
                    self.metrics.record_fault(
                        now,
                        crate::metrics::FaultKind::CertifierFailover { group, leader },
                    );
                    if self.tracer.on() {
                        self.tracer.emit(
                            now,
                            TraceData::Fault {
                                desc: format!(
                                    "certifier restart-failover group={group} leader={leader}"
                                ),
                            },
                        );
                    }
                }
            }
            Ev::HeartbeatTick => self.on_heartbeat_tick(now, queue),
            Ev::LinkPartition { a, b, heal_at } => {
                self.on_link_partition(now, a, b, heal_at, queue)
            }
            Ev::LinkHeal { a, b } => self.on_link_heal(now, a, b),
            Ev::ClientTimeout { txn } => self.on_client_timeout(now, txn, queue),
            Ev::EndWarmup => self.on_end_warmup(now),
            Ev::End => self.ended = true,
        }
    }

    /// Dispatches a new transaction instance: the balancer picks the
    /// replica, the node admits or queues it.
    fn submit_txn(
        &mut self,
        now: SimTime,
        client: usize,
        txn_type: TxnTypeId,
        arrived: SimTime,
        retries: u32,
        queue: &mut EventQueue<Ev>,
    ) {
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        if self.tracer.on() {
            self.tracer.emit(
                now,
                TraceData::Arrive {
                    txn: txn.0,
                    client,
                    txn_type: txn_type.0,
                    type_name: self.workload.type_name(txn_type).to_string(),
                    retries,
                },
            );
        }
        let replica = self.balancer.dispatch(txn_type).0;
        self.tracer.emit(
            now,
            TraceData::Dispatch {
                txn: txn.0,
                replica,
            },
        );
        // With the detector on, the balancer may still dispatch to a
        // physically dead replica it has not suspected yet — the oracle
        // never tells it. The TCP connect is refused after one round trip
        // and the client retries with capped exponential backoff, which is
        // what bridges the detection window without a storm.
        if self.detection_on() && !self.node(replica).is_up() {
            self.balancer.complete(ReplicaId(replica));
            let refused_at = now + 2 * self.config.lan_hop_us;
            if retries < self.clients.max_retries {
                queue.schedule(
                    refused_at + self.backoff_us(retries),
                    Ev::TxnRetry {
                        client,
                        txn_type,
                        arrived,
                        retries: retries + 1,
                    },
                );
            } else {
                self.metrics.record_gave_up();
                self.tracer
                    .emit(now, TraceData::GaveUp { txn: txn.0, client });
                self.schedule_next_arrival(refused_at, client, queue);
            }
            return;
        }
        if let Some(p) = &self.placement {
            // Partial replication's routing invariant: a transaction only
            // ever runs where every relation it touches is resident *and*
            // fully backfilled — a still-pending holder is never a dispatch
            // target.
            assert!(
                p.eligible(txn_type, replica),
                "dispatch routed type {} to non-holder replica {replica}",
                txn_type.0
            );
            if let Some(g) = p.group_of_type(txn_type) {
                // Skew signal for the rebalancer: dispatches per group
                // since the last migration.
                self.group_load[g] += 1;
            }
        }
        let plan = self.workload.types[txn_type.0 as usize].plan.clone();
        let is_update = plan.is_update();
        let node = self.nodes[replica]
            .as_mut()
            .expect("node leased to a driver shard");
        let executor = TxnExecutor::new(txn, txn_type, plan, node.snapshot());
        self.txns.insert(
            txn,
            TxnMeta {
                client,
                txn_type,
                arrived,
                retries,
                is_update,
                replica,
                abandoned: false,
            },
        );
        node.submit(now, txn, executor, queue);
        if self.config.client_timeout_us > 0 {
            queue.schedule(
                now + self.config.client_timeout_us,
                Ev::ClientTimeout { txn },
            );
        }
    }

    /// Crashes a replica: cold cache, admission queue drained, every
    /// in-flight transaction orphaned. Clients whose transactions were on
    /// the replica observe the connection drop and immediately retry —
    /// dispatched by the balancer, which now routes around the dead node.
    ///
    /// # Panics
    ///
    /// Panics when `replica` is the last live replica: dispatch needs a
    /// target, so a fault plan that kills the whole cluster is a mis-built
    /// experiment — failing here beats garbage metrics later.
    fn on_replica_crash(&mut self, now: SimTime, replica: usize, queue: &mut EventQueue<Ev>) {
        if !self.node(replica).is_up() {
            return;
        }
        let survivors = self
            .present_nodes()
            .filter(|n| n.is_up() && n.id() != replica)
            .count();
        assert!(
            survivors > 0,
            "cannot crash replica {replica}: it is the last live replica \
             (at least one must stay up for dispatch)"
        );
        self.node_mut(replica).crash();
        if self.detection_on() {
            // Physical death only. The balancer learns nothing here — the
            // replica simply stops answering heartbeats, and eligibility,
            // retries, and re-replication follow from the detector's
            // Suspected/Dead transitions. In-flight metas stay put for the
            // suspicion sweep.
            if self.fault_started[replica].is_none() {
                self.fault_started[replica] = Some(now);
            }
            self.metrics
                .record_fault(now, FaultKind::ReplicaCrash(replica));
            if self.tracer.on() {
                self.tracer.emit(
                    now,
                    TraceData::Fault {
                        desc: format!("crash replica={replica}"),
                    },
                );
            }
            return;
        }
        self.balancer.replica_failed(ReplicaId(replica));
        self.metrics
            .record_fault(now, crate::metrics::FaultKind::ReplicaCrash(replica));
        if self.tracer.on() {
            self.tracer.emit(
                now,
                TraceData::Fault {
                    desc: format!("crash replica={replica}"),
                },
            );
        }
        // An in-flight backfill onto the crashed replica can never finish —
        // the partial copy died with the cache. Cancel the task and roll
        // back the holder membership it had optimistically widened, so the
        // durability scan below sees the true live-copy counts.
        self.cancel_backfills_targeting(replica);
        // Durability invariant under partial replication: any group this
        // crash leaves below `min_copies` live holders is re-replicated onto
        // a survivor *now*, via certifier-log backfill, before the orphan
        // sweep retries its clients — so dispatch always has a live holder
        // and no committed writeset drops below the constraint (clamped by
        // the number of live replicas).
        if self.placement.is_some() {
            let (min_copies, affected) = {
                let p = self.placement.as_ref().expect("placement checked above");
                let affected: Vec<usize> = (0..p.group_count())
                    .filter(|g| p.holds_group(replica, *g))
                    .collect();
                (p.min_copies(), affected)
            };
            let live = self.present_nodes().filter(|n| n.is_up()).count();
            for g in affected {
                loop {
                    let live_holders = {
                        let p = self.placement.as_ref().expect("placement checked above");
                        p.holders(g)
                            .iter()
                            .filter(|r| {
                                self.nodes[**r]
                                    .as_ref()
                                    .expect("node leased to a driver shard")
                                    .is_up()
                            })
                            .count()
                    };
                    if live_holders >= min_copies.min(live) {
                        break;
                    }
                    if self.rereplicate_group(now, g, queue).is_none() {
                        break;
                    }
                }
            }
        }
        // Orphan sweep, sorted for determinism (HashMap iteration is not).
        // Events already queued for these transactions (steps, certifier
        // responses, completions) become stale and are ignored on arrival.
        let mut orphans: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, meta)| meta.replica == replica)
            .map(|(txn, _)| *txn)
            .collect();
        orphans.sort_unstable();
        for txn in orphans {
            let meta = self.txns.remove(&txn).expect("orphan metadata");
            self.balancer.complete(ReplicaId(replica));
            if meta.retries < self.clients.max_retries {
                self.submit_txn(
                    now,
                    meta.client,
                    meta.txn_type,
                    meta.arrived,
                    meta.retries + 1,
                    queue,
                );
            } else {
                self.metrics.record_gave_up();
                self.tracer.emit(
                    now,
                    TraceData::GaveUp {
                        txn: txn.0,
                        client: meta.client,
                    },
                );
                self.schedule_next_arrival(now, meta.client, queue);
            }
        }
    }

    /// Cancels every in-flight backfill onto `replica` and rolls back the
    /// holder membership each had optimistically widened, so durability
    /// scans see the true copy counts. Shared by the oracle crash path, the
    /// detector's *Dead* transition, and the chunk handler's dead-target
    /// guard.
    fn cancel_backfills_targeting(&mut self, replica: usize) {
        if self.placement.is_none() {
            return;
        }
        let mut rolled_back = false;
        for task in 0..self.backfills.len() {
            let t = &self.backfills[task];
            if t.target != replica || t.done || t.cancelled {
                continue;
            }
            let (group, rels) = (t.group, t.rels.clone());
            self.backfills[task].cancelled = true;
            let p = self.placement.as_mut().expect("placement checked above");
            p.complete_backfill(replica, &rels);
            p.remove_holder(group, replica);
            rolled_back = true;
        }
        if rolled_back {
            let (filter, masks) = {
                let p = self.placement.as_ref().expect("placement checked above");
                (
                    p.filter_for(replica),
                    p.type_masks(self.workload.types.len()),
                )
            };
            self.node_mut(replica).set_filter(filter);
            self.balancer.set_type_eligibility(Some(masks));
        }
    }

    /// Copies relation group `group` onto one more live replica: widens the
    /// target's holder membership and update filter *immediately* (so the
    /// copy converges through foreground propagation while it backfills),
    /// marks the target pending (dispatch eligibility waits for
    /// [`Ev::BackfillDone`]), and starts the backfill — instantaneous when
    /// `backfill_bytes_per_sec` is zero, staged through bandwidth-capped
    /// [`Ev::BackfillChunk`]s otherwise. The fault is recorded at
    /// completion, carrying the shipped bytes.
    ///
    /// The target is the live non-holder with the fewest placed pages (ties
    /// to the lowest id) — deterministic, so both drivers re-replicate
    /// identically. Returns the new holder, or `None` when placement is
    /// full-replication or every live replica already holds the group.
    fn rereplicate_group(
        &mut self,
        now: SimTime,
        group: usize,
        queue: &mut EventQueue<Ev>,
    ) -> Option<usize> {
        let (target, rels) = {
            let p = self.placement.as_ref()?;
            if group >= p.group_count() {
                return None;
            }
            // Targets must be believed live — with the detector on, a
            // suspected-but-up replica is unreachable from the control side
            // and would receive a copy nobody can use; with it off this is
            // exactly the historical `is_up()` filter.
            let target = (0..self.config.replicas)
                .filter(|r| self.believed_live(*r) && !p.holds_group(*r, group))
                .min_by_key(|r| (p.held_pages(*r), *r))?;
            // Only the relations the target does not already hold through
            // other groups need backfilling — overlap makes close standbys
            // cheap, exactly like §3's standby choice.
            (target, p.missing_relations(target, group))
        };
        self.widen_holder(group, target, &rels);
        self.start_backfill(now, group, target, rels, None, queue);
        Some(target)
    }

    /// Adds `target` as a holder of `group` with `rels` pending: the filter
    /// widens now (foreground propagation keeps the copy converging during
    /// the backfill) while the recomputed eligibility masks exclude the
    /// still-pending holder from dispatch.
    fn widen_holder(&mut self, group: usize, target: usize, rels: &BTreeSet<RelationId>) {
        let (filter, masks) = {
            let p = self
                .placement
                .as_mut()
                .expect("placement checked by caller");
            p.add_holder(group, target);
            p.mark_pending(target, rels);
            (
                p.filter_for(target),
                p.type_masks(self.workload.types.len()),
            )
        };
        self.node_mut(target).set_filter(filter);
        self.balancer.set_type_eligibility(Some(masks));
    }

    /// Creates a [`BackfillTask`] and schedules its copy. With no bandwidth
    /// cap (or nothing to ship) the whole log prefix is charged through the
    /// target's CPU/disk models at `now` — the historical instantaneous
    /// path — and only the completion event is scheduled. Under a cap the
    /// copy is staged through [`Ev::BackfillChunk`]s paced at
    /// `backfill_bytes_per_sec`, so the shipped pages compete with
    /// foreground propagation for the target's disk and the copy takes
    /// simulated time proportional to its volume.
    fn start_backfill(
        &mut self,
        now: SimTime,
        group: usize,
        target: usize,
        rels: BTreeSet<RelationId>,
        drop_source: Option<usize>,
        queue: &mut EventQueue<Ev>,
    ) {
        let upto = {
            let node = self.nodes[target]
                .as_ref()
                .expect("node leased to a driver shard");
            self.certifier.backfill_upto(node)
        };
        let task = self.backfills.len();
        self.backfills.push(BackfillTask {
            group,
            target,
            rels,
            next: 0,
            upto,
            bytes: 0,
            started: now,
            done: false,
            cancelled: false,
            drop_source,
        });
        let cap = self.config.backfill_bytes_per_sec;
        let t = &self.backfills[task];
        if cap == 0 || t.upto == 0 || t.rels.is_empty() {
            // Uncapped (or empty) copy: charge the whole log prefix through
            // the target's models and complete *synchronously* — the
            // historical semantics, where a crash-triggered re-replication
            // leaves the new holder dispatch-eligible before the orphan
            // sweep retries its clients.
            let rels = t.rels.clone();
            let node = self.nodes[target]
                .as_mut()
                .expect("node leased to a driver shard");
            let (done, bytes) = self.certifier.backfill(now, node, &rels);
            let t = &mut self.backfills[task];
            t.bytes = bytes;
            t.next = t.upto;
            self.on_backfill_done(done, task);
        } else {
            // The first chunk pays the request's LAN hop; each chunk then
            // paces itself by the bytes it actually shipped.
            queue.schedule(now + self.config.lan_hop_us, Ev::BackfillChunk { task });
        }
    }

    /// Ships one bandwidth-capped slice of backfill task `task` and
    /// schedules the next chunk (or completion) paced by the cap.
    fn on_backfill_chunk(&mut self, now: SimTime, task: usize, queue: &mut EventQueue<Ev>) {
        let (finished, target) = {
            let t = &self.backfills[task];
            (t.done || t.cancelled, t.target)
        };
        if finished {
            return;
        }
        // Detection mode: the oracle no longer cancels tasks at crash time,
        // so a chunk may land on a target that died since the last one.
        // The copy died with the cache — cancel here rather than apply
        // pages to a corpse. (Unreachable with the detector off.)
        if !self.node(target).is_up() {
            self.cancel_backfills_targeting(target);
            return;
        }
        let (from, upto, rels) = {
            let t = &self.backfills[task];
            (t.next, t.upto, t.rels.clone())
        };
        let node = self.nodes[target]
            .as_mut()
            .expect("node leased to a driver shard");
        let (_applied_at, bytes, next) =
            self.certifier
                .backfill_chunk(now, node, &rels, from, upto, BACKFILL_CHUNK_BYTES);
        let t = &mut self.backfills[task];
        t.bytes += bytes;
        t.next = next;
        self.tracer
            .emit(now, TraceData::BackfillChunk { task, bytes });
        let cap = self.config.backfill_bytes_per_sec.max(1);
        let delay = (bytes.saturating_mul(1_000_000) / cap).max(1);
        if next >= upto {
            // Completion pays the last chunk's transfer time too, so the
            // total copy duration scales inversely with the cap.
            queue.schedule(now + delay, Ev::BackfillDone { task });
        } else {
            queue.schedule(now + delay, Ev::BackfillChunk { task });
        }
    }

    /// Finishes backfill task `task`: clears the target's pending set (it
    /// becomes dispatch-eligible), sheds the migration donor when safe,
    /// recomputes the eligibility masks, and records the fault with the
    /// shipped volume.
    fn on_backfill_done(&mut self, now: SimTime, task: usize) {
        let t = &mut self.backfills[task];
        if t.done || t.cancelled {
            return;
        }
        t.done = true;
        let (group, target, bytes, started, drop_source) =
            (t.group, t.target, t.bytes, t.started, t.drop_source);
        let rels = t.rels.clone();
        self.migration_us += now.saturating_since(started);
        self.migration_bytes += bytes;
        // Migration: drop the donor now that the copy is complete — never
        // below `min_copies` holders (a concurrent crash may have shed
        // other copies since the migration started).
        let (dropped, masks) = {
            let p = self
                .placement
                .as_mut()
                .expect("backfill tasks only exist under partial placement");
            p.complete_backfill(target, &rels);
            let dropped = match drop_source {
                Some(src)
                    if p.holds_group(src, group) && p.holders(group).len() > p.min_copies() =>
                {
                    p.remove_holder(group, src);
                    Some((src, p.filter_for(src)))
                }
                _ => None,
            };
            (dropped, p.type_masks(self.workload.types.len()))
        };
        let dropped = dropped.map(|(src, filter)| {
            self.node_mut(src).set_filter(filter);
            src
        });
        self.balancer.set_type_eligibility(Some(masks));
        let kind = match dropped {
            Some(from) => crate::metrics::FaultKind::Migrate {
                group,
                from,
                to: target,
                bytes,
            },
            None => crate::metrics::FaultKind::Rereplicate {
                group,
                to: target,
                bytes,
            },
        };
        self.metrics.record_fault(now, kind);
        self.tracer.emit(
            now,
            TraceData::BackfillDone {
                task,
                group,
                to: target,
                bytes,
            },
        );
    }

    /// Periodic skew check: when the busiest holder of the hottest group is
    /// sufficiently more loaded than the idlest live non-holder, migrate
    /// the group there — capped backfill onto the target, donor dropped at
    /// completion. Single-flight: at most one backfill runs at a time, so
    /// copy traffic stays bounded by the cap.
    fn on_rebalance_tick(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        let Some(period) = self.config.migration_period else {
            return;
        };
        queue.schedule(now + period.as_micros(), Ev::RebalanceTick);
        if self.backfills.iter().any(|t| !t.done && !t.cancelled) {
            self.tracer
                .emit(now, TraceData::Rebalance { migration: None });
            return;
        }
        let Some((hot, src, dst, rels)) = self.pick_migration() else {
            self.tracer
                .emit(now, TraceData::Rebalance { migration: None });
            return;
        };
        self.tracer.emit(
            now,
            TraceData::Rebalance {
                migration: Some((hot, src, dst)),
            },
        );
        self.widen_holder(hot, dst, &rels);
        self.start_backfill(now, hot, dst, rels, Some(src), queue);
        // Restart the skew window so the next tick judges post-migration
        // traffic, not the history that triggered this move.
        for l in &mut self.group_load {
            *l = 0;
        }
    }

    /// Chooses the migration for this rebalance round: hottest group by
    /// dispatch count, donor = its busiest live holder, target = idlest
    /// live non-holder, all ties to the lowest id. Returns `None` when
    /// there is no skew signal, no candidate pair, or the imbalance is
    /// within the hysteresis band.
    fn pick_migration(&self) -> Option<(usize, usize, usize, BTreeSet<RelationId>)> {
        let p = self.placement.as_ref()?;
        if p.is_full() {
            return None;
        }
        let (hot, load) = self
            .group_load
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?;
        if load == 0 {
            return None;
        }
        let loads = self.balancer.inner().loads();
        let live = |r: &usize| {
            self.nodes[*r]
                .as_ref()
                .expect("node leased to a driver shard")
                .is_up()
        };
        let src = p.holders(hot).iter().copied().filter(live).max_by(|a, b| {
            loads[*a]
                .bottleneck()
                .total_cmp(&loads[*b].bottleneck())
                .then(b.cmp(a))
        })?;
        let dst = (0..self.config.replicas)
            .filter(|r| live(r) && !p.holds_group(*r, hot))
            .min_by(|a, b| {
                loads[*a]
                    .bottleneck()
                    .total_cmp(&loads[*b].bottleneck())
                    .then(a.cmp(b))
            })?;
        if loads[src].bottleneck() < loads[dst].bottleneck() + MIGRATION_MIN_IMBALANCE {
            return None;
        }
        Some((hot, src, dst, p.missing_relations(dst, hot)))
    }

    /// Recovers a crashed replica: the durable prefix (its applied version)
    /// survived, so §3 standard recovery replays only the writesets it
    /// missed from the certifier's persistent log — paying cold-cache page
    /// reads — then the replica rejoins dispatch.
    fn on_replica_recover(&mut self, now: SimTime, replica: usize) {
        if self.node(replica).is_up() {
            return;
        }
        self.node_mut(replica).mark_recovered();
        // Checkpoint-lag crash model: the durable on-disk state is a
        // checkpoint `k` versions behind what the replica had applied when
        // it died, so the replay window covers that redo prefix *plus*
        // whatever committed while it was down.
        let k = self.config.checkpoint_lag;
        let from = Version(self.node(replica).applied().0.saturating_sub(k));
        if k > 0 {
            self.node_mut(replica).replica_mut().recover(from);
            let head = self.certifier.version();
            self.tracer.emit(
                now,
                TraceData::RedoStart {
                    replica,
                    from: from.0,
                    head: head.0,
                },
            );
        }
        // The replay's CPU and disk work is charged through the node's
        // queueing models at `now`, so transactions dispatched to the
        // rejoining replica queue behind it — the completion time itself
        // needs no separate event. Under partial replication the replay
        // carries pages only for held groups (the rest are version ticks).
        let (sent0, _) = self.certifier.propagation_bytes();
        let replay_done = {
            let node = self.nodes[replica]
                .as_mut()
                .expect("node leased to a driver shard");
            self.certifier.catch_up(now, node, self.placement.as_ref())
        };
        let (sent1, _) = self.certifier.propagation_bytes();
        let bytes = sent1.saturating_sub(sent0);
        let us = replay_done.saturating_since(now);
        self.redo_bytes += bytes;
        self.redo_us += us;
        if k > 0 {
            self.tracer
                .emit(now, TraceData::RedoDone { replica, bytes, us });
        }
        self.metrics
            .record_fault(now, crate::metrics::FaultKind::ReplicaRecover(replica));
        if self.tracer.on() {
            self.tracer.emit(
                now,
                TraceData::Fault {
                    desc: format!("recover replica={replica}"),
                },
            );
        }
        if self.detection_on() {
            // The replica does not answer heartbeats until the replay
            // drains; dispatch eligibility and the over-replication shrink
            // follow at the detector's *Trusted* transition, never from
            // oracle knowledge.
            self.recovering_until[replica] = replay_done;
            return;
        }
        self.balancer.replica_recovered(ReplicaId(replica));
        // The crash-time re-replication widened holder sets to keep
        // `min_copies` *live* copies; this recovery may leave groups
        // over-replicated. Shrink back so placement converges instead of
        // ratcheting wider with every crash/recover cycle.
        self.shrink_over_replicated(now);
    }

    /// Drops surplus holders until every group is back at exactly
    /// `min_copies` copies. Victims are chosen deterministically: first a
    /// holder whose backfill is still in flight (the copy is cancelled —
    /// cheaper to abandon than to finish), then crashed holders (their
    /// pages are stale until replay anyway), then the live holder with the
    /// most placed pages; ties to the highest id. Dropping a holder only
    /// narrows its update filter — no transaction state is touched, so the
    /// shrink can never abort anything.
    fn shrink_over_replicated(&mut self, now: SimTime) {
        let group_count = match &self.placement {
            Some(p) if !p.is_full() => p.group_count(),
            _ => return,
        };
        let mut dirty = false;
        for g in 0..group_count {
            loop {
                let min_copies = {
                    let p = self.placement.as_ref().expect("placement checked above");
                    if p.holders(g).len() <= p.min_copies() {
                        break;
                    }
                    p.min_copies()
                };
                let pending_task = self
                    .backfills
                    .iter()
                    .position(|t| t.group == g && !t.done && !t.cancelled);
                let victim = match pending_task {
                    Some(task) => {
                        let target = self.backfills[task].target;
                        let rels = self.backfills[task].rels.clone();
                        self.backfills[task].cancelled = true;
                        let p = self.placement.as_mut().expect("placement checked above");
                        p.complete_backfill(target, &rels);
                        target
                    }
                    None => {
                        let p = self.placement.as_ref().expect("placement checked above");
                        let live_holders = p
                            .holders(g)
                            .iter()
                            .filter(|r| {
                                self.nodes[**r]
                                    .as_ref()
                                    .expect("node leased to a driver shard")
                                    .is_up()
                            })
                            .count();
                        p.holders(g)
                            .iter()
                            .copied()
                            .filter(|r| {
                                let up = self.nodes[*r]
                                    .as_ref()
                                    .expect("node leased to a driver shard")
                                    .is_up();
                                // Never shed a live copy if that would
                                // leave fewer than `min_copies` live.
                                !up || live_holders > min_copies
                            })
                            .max_by_key(|r| {
                                let up = self.nodes[*r]
                                    .as_ref()
                                    .expect("node leased to a driver shard")
                                    .is_up();
                                (!up, p.held_pages(*r), *r)
                            })
                            .expect("over-replicated group has a droppable holder")
                    }
                };
                let filter = {
                    let p = self.placement.as_mut().expect("placement checked above");
                    p.remove_holder(g, victim);
                    p.filter_for(victim)
                };
                self.node_mut(victim).set_filter(filter);
                self.metrics.record_fault(
                    now,
                    crate::metrics::FaultKind::ShrinkHolder {
                        group: g,
                        from: victim,
                    },
                );
                if self.tracer.on() {
                    self.tracer.emit(
                        now,
                        TraceData::Fault {
                            desc: format!("shrink group={g} holder={victim}"),
                        },
                    );
                }
                dirty = true;
            }
        }
        if dirty {
            let masks = {
                let p = self.placement.as_ref().expect("placement checked above");
                p.type_masks(self.workload.types.len())
            };
            self.balancer.set_type_eligibility(Some(masks));
        }
    }

    /// One heartbeat round: the balancer pings every replica, the probe
    /// pairs occupy the control-side NIC, and the answers feed the
    /// per-replica accrual counters. The resulting transitions — and only
    /// they — change dispatch eligibility, retry in-flight work, trigger
    /// re-replication, or restore trust.
    fn on_heartbeat_tick(&mut self, now: SimTime, queue: &mut EventQueue<Ev>) {
        let period = self.config.heartbeat_period_us;
        if period == 0 {
            return;
        }
        let n = self.config.replicas;
        // The round's ping/ack pairs serialize on the control-side NIC:
        // certification requests arriving behind them wait — detection is
        // cheap, not free.
        self.certifier.occupy_nic(now, n as u64);
        let reachable: Vec<bool> = (0..n)
            .map(|r| {
                self.node(r).is_up()
                    && !self.partitioned(CONTROL_NODE, r)
                    && now >= self.recovering_until[r]
            })
            .collect();
        for tr in self.balancer.observe_heartbeats(&reachable) {
            self.apply_health_transition(now, tr, queue);
        }
        queue.schedule(now + period, Ev::HeartbeatTick);
    }

    /// Applies one detector transition's cluster-side consequences.
    fn apply_health_transition(
        &mut self,
        now: SimTime,
        tr: HealthTransition,
        queue: &mut EventQueue<Ev>,
    ) {
        match tr {
            HealthTransition::Miss { replica, misses } => {
                self.tracer
                    .emit(now, TraceData::HeartbeatMiss { replica, misses });
            }
            HealthTransition::Suspected { replica, misses } => {
                let injected = self.fault_started[replica].unwrap_or(now);
                self.metrics.record_fault_detected(
                    now,
                    injected,
                    FaultKind::ReplicaSuspected(replica),
                );
                self.tracer
                    .emit(now, TraceData::Suspect { replica, misses });
                // Out of dispatch and MALB eligibility; in-flight work
                // retries on survivors. Re-replication waits for *Dead* —
                // a false suspicion must cost a filter-widen, not a copy.
                self.balancer.replica_failed(ReplicaId(replica));
                self.sweep_suspected(now, replica, queue);
            }
            HealthTransition::Dead { replica } => {
                let injected = self.fault_started[replica].unwrap_or(now);
                self.metrics
                    .record_fault_detected(now, injected, FaultKind::ReplicaDead(replica));
                if self.tracer.on() {
                    self.tracer.emit(
                        now,
                        TraceData::Fault {
                            desc: format!("dead replica={replica}"),
                        },
                    );
                }
                self.cancel_backfills_targeting(replica);
                self.rereplicate_under_copied(now, replica, queue);
            }
            HealthTransition::Trusted { replica, was_dead } => {
                let injected = self.fault_started[replica].unwrap_or(now);
                self.fault_started[replica] = None;
                self.metrics.record_fault_detected(
                    now,
                    injected,
                    FaultKind::ReplicaTrusted(replica),
                );
                self.tracer.emit(now, TraceData::Unsuspect { replica });
                // The cheap rejoin: dispatch eligibility back on. Only a
                // wrongly-declared death needs placement work — shrinking
                // whatever re-replication over-copied.
                self.balancer.replica_recovered(ReplicaId(replica));
                if was_dead {
                    self.shrink_over_replicated(now);
                }
            }
        }
    }

    /// Retries a suspected replica's in-flight transactions on survivors —
    /// the oracle crash path's orphan sweep, driven by the detector instead.
    /// A merely-unreachable (still up) replica may still be running them:
    /// those metas are kept as *abandoned* so the stale completions free
    /// their Gatekeeper slots; a physically dead replica's metas are
    /// dropped outright, as the oracle's were.
    fn sweep_suspected(&mut self, now: SimTime, replica: usize, queue: &mut EventQueue<Ev>) {
        let up = self.node(replica).is_up();
        let mut orphans: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, meta)| meta.replica == replica && !meta.abandoned)
            .map(|(txn, _)| *txn)
            .collect();
        orphans.sort_unstable();
        for txn in orphans {
            let (client, txn_type, arrived, retries) = {
                let meta = self.txns.get_mut(&txn).expect("swept meta present");
                meta.abandoned = true;
                (meta.client, meta.txn_type, meta.arrived, meta.retries)
            };
            if !up {
                self.txns.remove(&txn);
            }
            self.balancer.complete(ReplicaId(replica));
            if retries < self.clients.max_retries {
                self.submit_txn(now, client, txn_type, arrived, retries + 1, queue);
            } else {
                self.metrics.record_gave_up();
                self.tracer
                    .emit(now, TraceData::GaveUp { txn: txn.0, client });
                self.schedule_next_arrival(now, client, queue);
            }
        }
        if !up {
            // Previously-abandoned metas (client timeouts) on a dead node
            // can never complete — drop them too. Pure map cleanup, no
            // side effects, so iteration order is immaterial.
            let stale: Vec<TxnId> = self
                .txns
                .iter()
                .filter(|(_, meta)| meta.replica == replica)
                .map(|(txn, _)| *txn)
                .collect();
            for txn in stale {
                self.txns.remove(&txn);
            }
        }
    }

    /// Re-replicates every group the confirmed-dead `replica` holds that
    /// has fallen below `min_copies` believed-live holders — the oracle
    /// crash path's durability scan, deferred from suspicion to *Dead* so
    /// a false suspicion never ships a byte.
    fn rereplicate_under_copied(
        &mut self,
        now: SimTime,
        replica: usize,
        queue: &mut EventQueue<Ev>,
    ) {
        if self.placement.is_none() {
            return;
        }
        let (min_copies, affected) = {
            let p = self.placement.as_ref().expect("placement checked above");
            let affected: Vec<usize> = (0..p.group_count())
                .filter(|g| p.holds_group(replica, *g))
                .collect();
            (p.min_copies(), affected)
        };
        let live = (0..self.config.replicas)
            .filter(|r| self.believed_live(*r))
            .count();
        for g in affected {
            loop {
                let live_holders = {
                    let p = self.placement.as_ref().expect("placement checked above");
                    p.holders(g)
                        .iter()
                        .filter(|r| self.believed_live(**r))
                        .count()
                };
                if live_holders >= min_copies.min(live) {
                    break;
                }
                if self.rereplicate_group(now, g, queue).is_none() {
                    break;
                }
            }
        }
    }

    /// Installs a partition between `a` and `b`: messages between them drop
    /// until `heal_at`. Partitioning a replica against [`CONTROL_NODE`]
    /// severs it from heartbeats, certification, and propagation without
    /// killing it — the false-suspicion injection.
    fn on_link_partition(
        &mut self,
        now: SimTime,
        a: usize,
        b: usize,
        heal_at: SimTime,
        queue: &mut EventQueue<Ev>,
    ) {
        let pair = (a.min(b), a.max(b));
        if !self.partitions.contains(&pair) {
            self.partitions.push(pair);
            // The fault clock detection latency is measured from starts
            // the moment a replica loses its control link (`CONTROL_NODE`
            // is `usize::MAX`, so it always normalizes to `pair.1`).
            if pair.1 == CONTROL_NODE
                && pair.0 < self.config.replicas
                && self.fault_started[pair.0].is_none()
            {
                self.fault_started[pair.0] = Some(now);
            }
            self.metrics.record_fault(
                now,
                FaultKind::Partition {
                    a: pair.0,
                    b: pair.1,
                },
            );
            if self.tracer.on() {
                self.tracer.emit(
                    now,
                    TraceData::Fault {
                        desc: format!(
                            "partition {}<->{}",
                            endpoint_name(pair.0),
                            endpoint_name(pair.1)
                        ),
                    },
                );
            }
        }
        queue.schedule(heal_at, Ev::LinkHeal { a, b });
    }

    /// Removes a partition; traffic between the pair flows again. Trust is
    /// *not* restored here — the detector re-trusts the replica only once
    /// heartbeats actually answer again.
    fn on_link_heal(&mut self, now: SimTime, a: usize, b: usize) {
        let pair = (a.min(b), a.max(b));
        if let Some(i) = self.partitions.iter().position(|p| *p == pair) {
            self.partitions.remove(i);
            self.metrics.record_fault(
                now,
                FaultKind::PartitionHealed {
                    a: pair.0,
                    b: pair.1,
                },
            );
            if self.tracer.on() {
                self.tracer.emit(
                    now,
                    TraceData::Fault {
                        desc: format!("heal {}<->{}", endpoint_name(pair.0), endpoint_name(pair.1)),
                    },
                );
            }
        }
    }

    /// The client stopped waiting for `txn`: release its balancer
    /// connection, mark the meta abandoned (the transaction may still be
    /// running — its eventual completion then only frees the slot), and
    /// retry with capped exponential backoff.
    fn on_client_timeout(&mut self, now: SimTime, txn: TxnId, queue: &mut EventQueue<Ev>) {
        let Some(meta) = self.txns.get_mut(&txn) else {
            return; // Completed (or swept away) before the timeout fired.
        };
        if meta.abandoned {
            return; // Already rescued by the suspicion sweep.
        }
        meta.abandoned = true;
        let (client, txn_type, arrived, retries, replica) = (
            meta.client,
            meta.txn_type,
            meta.arrived,
            meta.retries,
            meta.replica,
        );
        self.balancer.complete(ReplicaId(replica));
        if retries < self.clients.max_retries {
            queue.schedule(
                now + self.backoff_us(retries),
                Ev::TxnRetry {
                    client,
                    txn_type,
                    arrived,
                    retries: retries + 1,
                },
            );
        } else {
            self.metrics.record_gave_up();
            self.tracer
                .emit(now, TraceData::GaveUp { txn: txn.0, client });
            self.schedule_next_arrival(now, client, queue);
        }
    }

    fn on_client_arrive(&mut self, now: SimTime, client: usize, queue: &mut EventQueue<Ev>) {
        let txn_type = self
            .clients
            .next_type(&self.mixes[self.active_mix], &mut self.rng);
        self.submit_txn(now, client, txn_type, now, 0, queue);
    }

    /// Commit: apply remote writesets then finish; conflict: abort and let
    /// the completion path retry.
    fn on_certify_return(
        &mut self,
        now: SimTime,
        replica: usize,
        txn: TxnId,
        version: Option<Version>,
        queue: &mut EventQueue<Ev>,
    ) {
        if !self.txns.contains_key(&txn) {
            // Orphaned by a crash on the origin replica: the client already
            // retried elsewhere. A commit still exists in the certifier's
            // log and reaches the replica through recovery replay or
            // propagation, so the response is simply dropped.
            return;
        }
        if !self.node(replica).is_up() {
            // Detection mode: the origin died after sending — the response
            // has nowhere to land. The meta stays for the suspicion sweep
            // to retry the client. (With the oracle, a crash removes every
            // meta synchronously, so this is unreachable.)
            return;
        }
        if self.partitioned(replica, CONTROL_NODE) {
            // The response is dropped on the severed link. The replica-side
            // proxy sees the certifier connection break and aborts the
            // waiting transaction locally, freeing the Gatekeeper slot; the
            // commit (if any) reaches the replica later through propagation
            // after heal, and the client is rescued by timeout or sweep.
            self.node_mut(replica).on_finish(now, false, queue);
            if self.txns.get(&txn).is_some_and(|m| m.abandoned) {
                self.txns.remove(&txn);
            }
            return;
        }
        let done_at = match version {
            Some(v) => {
                let node = self.nodes[replica]
                    .as_mut()
                    .expect("node leased to a driver shard");
                self.certifier
                    .on_return_commit(now, node, v, self.placement.as_ref())
            }
            None => {
                let txn_type = self.txns[&txn].txn_type.0;
                self.metrics.record_abort(txn_type);
                now
            }
        };
        queue.schedule(
            done_at,
            Ev::TxnComplete {
                replica,
                txn,
                committed: version.is_some(),
            },
        );
    }

    /// Frees the replica slot, then routes the outcome back to the client.
    /// Either way the response pays the two-hop trip replica → balancer →
    /// client before the client reacts: record + think on commit, a
    /// [`Ev::TxnRetry`] (fresh snapshot, possibly elsewhere) or giving up
    /// on abort. The handler itself touches only `replica`'s node — the
    /// invariant behind `TxnComplete`'s `Footprint::Replica` and the
    /// parallel driver's four-hop lookahead horizon.
    fn on_txn_complete(
        &mut self,
        now: SimTime,
        replica: usize,
        txn: TxnId,
        committed: bool,
        queue: &mut EventQueue<Ev>,
    ) {
        if !self.txns.contains_key(&txn) {
            // Orphaned by a crash: the Gatekeeper slot and the balancer
            // connection were both released in the orphan sweep.
            return;
        }
        if !self.node(replica).is_up() {
            // Detection mode: the node died between scheduling and delivery
            // of this completion — the response died with it. The meta
            // stays; the suspicion sweep retries the client.
            return;
        }
        let meta = self.txns.remove(&txn).expect("presence checked above");
        self.node_mut(replica).on_finish(now, committed, queue);
        if meta.abandoned {
            // The client stopped waiting (timeout or suspicion sweep) and
            // its retry is already in flight elsewhere; the balancer
            // connection was released at abandonment, so only the
            // Gatekeeper slot mattered here.
            return;
        }
        self.balancer.complete(ReplicaId(replica));
        let response_at = now + 2 * self.config.lan_hop_us;
        self.tracer.emit(
            now,
            TraceData::Complete {
                txn: txn.0,
                replica,
                committed,
                response_us: response_at.saturating_since(meta.arrived),
            },
        );
        if committed {
            self.metrics.record_completion_typed(
                response_at,
                meta.arrived,
                meta.is_update,
                meta.txn_type.0,
            );
            self.schedule_next_arrival(response_at, meta.client, queue);
        } else if meta.retries < self.clients.max_retries {
            queue.schedule(
                response_at,
                Ev::TxnRetry {
                    client: meta.client,
                    txn_type: meta.txn_type,
                    arrived: meta.arrived,
                    retries: meta.retries + 1,
                },
            );
        } else {
            self.metrics.record_gave_up();
            self.tracer.emit(
                now,
                TraceData::GaveUp {
                    txn: txn.0,
                    client: meta.client,
                },
            );
            self.schedule_next_arrival(response_at, meta.client, queue);
        }
    }

    /// Schedules a client's next arrival after its think time.
    fn schedule_next_arrival(&mut self, from: SimTime, client: usize, queue: &mut EventQueue<Ev>) {
        let think = self.clients.think(&mut self.rng);
        queue.schedule(from + think, Ev::ClientArrive { client });
    }

    /// Per-replica periodic work: node maintenance, propagation pull, and
    /// (every fourth 250 ms round) a load-daemon sample for the balancer.
    fn on_maintenance(
        &mut self,
        now: SimTime,
        replica: usize,
        round: u64,
        queue: &mut EventQueue<Ev>,
    ) {
        // A severed control link drops both the propagation pull and the
        // load-daemon report — the node still does its local maintenance.
        let cut = self.partitioned(replica, CONTROL_NODE);
        let node = self.nodes[replica]
            .as_mut()
            .expect("node leased to a driver shard");
        // A crashed replica does no maintenance, but the periodic chain
        // keeps ticking so it resumes seamlessly after recovery.
        if node.is_up() {
            node.on_maintenance(now);
            if !cut {
                self.certifier
                    .maintenance_pull(now, node, self.placement.as_ref());
            }
            if round % 4 == 3 && !cut {
                let report = node.sample_load(now);
                self.balancer.report(
                    ReplicaId(replica),
                    ResourceLoad {
                        cpu: report.cpu,
                        disk: report.disk,
                    },
                );
                // Utilization timeline: one sample per replica per 1 s
                // balancer-report round, from the same smoothed load the
                // balancer sees plus the node's queue/memory state and any
                // in-flight backfill traffic targeting it.
                if self.tracer.on() {
                    let backfill_bytes = self
                        .backfills
                        .iter()
                        .filter(|t| t.target == replica && !t.done && !t.cancelled)
                        .map(|t| t.bytes)
                        .sum();
                    self.tracer.emit(
                        now,
                        TraceData::Util {
                            replica,
                            cpu: report.cpu,
                            disk: report.disk,
                            queue: node.replica().outstanding(),
                            resident_bytes: node.replica().resident_bytes(),
                            backfill_bytes,
                        },
                    );
                }
            }
        }
        queue.schedule(
            now + 250_000,
            Ev::Maintenance {
                replica,
                round: round + 1,
            },
        );
    }

    /// Resets the measurement window at the end of warm-up.
    fn on_end_warmup(&mut self, now: SimTime) {
        let (read, write) = self.disk_bytes();
        self.metrics.start_window(now, read, write);
        self.busy0 = self.busy_totals();
        self.prop0 = self.certifier.propagation_bytes();
        self.window_started = now;
    }

    /// Installs an update filter on a replica (alternate drivers; the
    /// balancer tick normally does this itself).
    pub fn set_filter(&mut self, replica: usize, filter: UpdateFilter) {
        self.node_mut(replica).set_filter(filter);
    }
}

/// Human-readable partition endpoint for trace descriptions.
fn endpoint_name(n: usize) -> String {
    if n == CONTROL_NODE {
        "ctl".to_string()
    } else {
        n.to_string()
    }
}
