//! Events driving the cluster simulation.
//!
//! Every component interaction travels through a timestamped [`Ev`] in the
//! [`crate::world::World`] event queue. The transaction lifecycle:
//!
//! 1. `ClientArrive` — a client finishes thinking, the balancer picks a
//!    replica, the proxy (Gatekeeper) admits or queues the transaction;
//! 2. `StepTxn` — the replica advances the transaction by a CPU quantum or
//!    one disk read;
//! 3. read-only transactions complete locally (`TxnComplete`); update
//!    transactions send their writeset to the certifier (`CertifySend`),
//!    whose response (`CertifyReturn`) carries the remote writesets the
//!    replica must apply before committing — or a conflict, aborting the
//!    transaction for the client to retry;
//! 4. `Maintenance` — per replica: background writes, propagation pulls
//!    (500 ms), load-daemon samples (1 s);
//! 5. `LbTick` — MALB rebalancing and (eventually) filter installation.
//!
//! Failure injection travels through the same queue: `ReplicaCrash` drops a
//! replica's in-flight work and routes dispatch around it, `ReplicaRecover`
//! replays the certifier log and rejoins dispatch with a cold cache, and
//! `CertifierKill` kills a certifier-group member (a leader kill triggers
//! the §4.4 backup election). Because they are ordinary events handled by
//! [`crate::state::ClusterState::handle`], every driver observes identical
//! failure timing; the parallel driver treats them — like every
//! non-`StepTxn` event — as window barriers.

use tashkent_engine::{TxnId, Version, Writeset};

/// Events driving the simulation.
///
/// `Clone` exists so experiments can carry pre-built injection schedules
/// (see `Experiment::injections`); events in flight are never cloned.
#[derive(Debug, Clone)]
pub enum Ev {
    /// A client submits its next transaction.
    ClientArrive {
        /// Client index.
        client: usize,
    },
    /// Continue executing a transaction on a replica.
    StepTxn {
        /// Replica index.
        replica: usize,
        /// Transaction.
        txn: TxnId,
    },
    /// A writeset reaches the certifier.
    CertifySend {
        /// Origin replica.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// The writeset.
        ws: Writeset,
    },
    /// The certifier's response reaches the replica.
    CertifyReturn {
        /// Origin replica.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// Commit version, or `None` on conflict.
        version: Option<Version>,
    },
    /// A transaction finished on its replica (response travels to client).
    TxnComplete {
        /// Replica index.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// Whether it committed (vs aborted).
        committed: bool,
    },
    /// Per-replica periodic work: background writer, propagation, daemon.
    Maintenance {
        /// Replica index.
        replica: usize,
        /// Round counter (daemon samples every other round).
        round: u64,
    },
    /// Load-balancer rebalance tick.
    LbTick,
    /// Switch the workload mix (dynamic-reconfiguration experiments).
    MixSwitch {
        /// Index into the experiment's mix list.
        mix: usize,
    },
    /// Freeze the balancer (static-configuration baseline).
    FreezeLb,
    /// A replica fails: cold cache, in-flight work dropped, clients retry
    /// elsewhere, the balancer routes around it. At least one replica must
    /// stay alive for dispatch to have a target.
    ReplicaCrash {
        /// Replica index.
        replica: usize,
    },
    /// A crashed replica rejoins: it replays the writesets it missed from
    /// the certifier's persistent log (§3 standard recovery), then re-enters
    /// dispatch with a cold cache.
    ReplicaRecover {
        /// Replica index.
        replica: usize,
    },
    /// Kill a certifier-group member. Killing the leader elects a backup
    /// after the failover delay; certification requests arriving in the gap
    /// wait for the new leader (§4.4).
    CertifierKill {
        /// Group member index (the initial leader is member 0).
        member: usize,
    },
    /// Under partial replication: copy a relation group onto one more live
    /// replica, backfilling its pages from the certifier's persistent log
    /// and widening dispatch eligibility. A no-op under full replication or
    /// when every live replica already holds the group. The crash handler
    /// re-replicates under-`min_copies` groups synchronously (so dispatch
    /// never lacks a holder); this event is the injectable form for
    /// scenarios and tests. Like every non-`StepTxn` event, the parallel
    /// driver treats it as a window barrier.
    Rereplicate {
        /// Relation-group index in the run's `PlacementMap`.
        group: usize,
    },
    /// End of warm-up: reset the measurement window.
    EndWarmup,
    /// End of run.
    End,
}
