//! Events driving the cluster simulation.
//!
//! Every component interaction travels through a timestamped [`Ev`] in the
//! [`crate::world::World`] event queue. The transaction lifecycle:
//!
//! 1. `ClientArrive` — a client finishes thinking, the balancer picks a
//!    replica, the proxy (Gatekeeper) admits or queues the transaction;
//! 2. `StepTxn` — the replica advances the transaction by a CPU quantum or
//!    one disk read;
//! 3. read-only transactions complete locally (`TxnComplete`); update
//!    transactions send their writeset to the certifier (`CertifySend`),
//!    whose response (`CertifyReturn`) carries the remote writesets the
//!    replica must apply before committing — or a conflict, aborting the
//!    transaction for the client to retry;
//! 4. `Maintenance` — per replica: background writes, propagation pulls
//!    (500 ms), load-daemon samples (1 s);
//! 5. `LbTick` — MALB rebalancing and (eventually) filter installation.
//!
//! Failure injection travels through the same queue: `ReplicaCrash` drops a
//! replica's in-flight work and routes dispatch around it, `ReplicaRecover`
//! replays the certifier log and rejoins dispatch with a cold cache, and
//! `CertifierKill` kills a certifier-group member (a leader kill triggers
//! the §4.4 backup election). Because they are ordinary events handled by
//! [`crate::state::ClusterState::handle`], every driver observes identical
//! failure timing; the parallel driver treats them — like every other
//! [`Footprint::Global`] event — as window barriers.

use tashkent_engine::{TxnId, TxnTypeId, Version, Writeset};
use tashkent_sim::SimTime;

/// Sentinel "node id" for the control plane (balancer + certifier side) in
/// [`Ev::LinkPartition`] pairs: partitioning `(CONTROL_NODE, r)` cuts
/// replica `r` off from heartbeats, certification traffic, and propagation
/// pulls without killing it — the deterministic false-suspicion injection.
pub const CONTROL_NODE: usize = usize::MAX;

/// The *replica-node* state an event's handler touches — the classification
/// the parallel driver's window formation runs on.
///
/// [`crate::state::ClusterState::handle`] routes every event to exactly one
/// handler; the footprint summarizes which [`crate::components::ClusterNode`]
/// state that handler can read or write. Coordinator-only state (the
/// balancer, the certifier link, client/transaction metadata, metrics, the
/// experiment RNG) is *not* part of a footprint: the driver executes every
/// non-`StepTxn` handler on the coordinator in exact sequential order, so
/// only contention with replica state leased to worker shards matters.
///
/// The mapping must stay in lock-step with the routing in
/// `ClusterState::handle`; each variant documents the handler behaviour it
/// encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// The handler touches exactly one replica's node, at the event's own
    /// timestamp (`StepTxn`, `CertifyReturn`, committed `TxnComplete`,
    /// `Maintenance`). The parallel driver may defer such an event into the
    /// merge if it bars that replica's shard from the event's key onward.
    Replica(usize),
    /// The handler touches only certifier-side state; its consequence (a
    /// `CertifyReturn`) reaches `origin`'s node no earlier than one LAN hop
    /// after the event (`CertifySend`). Deferrable with a barrier on
    /// `origin` at `t + lan_hop_us`. Under sharded certification `groups`
    /// is the bitmask of certifier groups the writeset touches (the
    /// handler's conflict checks run against exactly those shards, which
    /// may be leased to pool workers); `0` means the unified certifier,
    /// whose state never leaves the coordinator.
    Certifier {
        /// Touched certifier groups (bitmask; `0` = unified certifier).
        groups: u64,
        /// The replica the certifier's answer returns to.
        origin: usize,
    },
    /// The handler dispatches a new submission through the balancer *now*,
    /// but its immediate node touches are shard-invisible (Gatekeeper
    /// admission, transaction registration, a snapshot of the applied
    /// version — none of it read by a worker stepping other transactions);
    /// the earliest shard-visible consequence is the submitted
    /// transaction's first step, two LAN hops later, on whichever replica
    /// the balancer picks (`ClientArrive`, `TxnRetry`). Deferrable with a
    /// barrier on *every* shard at `t + 2·lan_hop_us`.
    Dispatch,
    /// The handler can immediately touch arbitrary replicas or
    /// cross-cutting state that shards read (balancer epochs installing
    /// filters that evict pool pages, faults, placement changes, warm-up
    /// and run boundaries). Always a window barrier. Note client dispatch
    /// is *not* here: its immediate effects are shard-invisible, which is
    /// exactly what [`Footprint::Dispatch`] encodes.
    Global,
}

/// Which replica nodes must be *physically present* in
/// [`crate::state::ClusterState`] before an event's handler may run — the
/// recall key the parallel driver's shard leases are built on.
///
/// [`Footprint`] answers "may this event defer past a shard?"; `NodeDemand`
/// answers the complementary question for the pipelined pool: once a node
/// has been leased to a persistent worker across a window boundary, which
/// coordinator-side handlers force the driver to recall it first. The two
/// classifications differ only for [`Footprint::Dispatch`]: dispatch may
/// *defer* behind a two-hop barrier, but when its handler finally runs it
/// routes through the balancer and touches whichever node it admits on, at
/// that same instant — so it demands every node home even though it never
/// stops a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeDemand {
    /// The handler reads no replica node (certifier-side bookkeeping).
    NoNode,
    /// The handler touches exactly this replica's node.
    Node(usize),
    /// The handler touches the certifier shards in this group bitmask
    /// (sharded certification: the shards may be leased to pool workers
    /// and must come home first). It reads no replica node.
    CertGroups(u64),
    /// The handler may touch any node (balancer dispatch, faults,
    /// placement changes, run control).
    AllNodes,
}

impl Footprint {
    /// The node-presence requirement of the handler this footprint
    /// classifies (see [`NodeDemand`]).
    pub fn demand(&self) -> NodeDemand {
        match self {
            Footprint::Replica(r) => NodeDemand::Node(*r),
            Footprint::Certifier { groups: 0, .. } => NodeDemand::NoNode,
            Footprint::Certifier { groups, .. } => NodeDemand::CertGroups(*groups),
            Footprint::Dispatch | Footprint::Global => NodeDemand::AllNodes,
        }
    }
}

/// Events driving the simulation.
///
/// `Clone` exists so experiments can carry pre-built injection schedules
/// (see `Experiment::injections`); events in flight are never cloned.
#[derive(Debug, Clone)]
pub enum Ev {
    /// A client submits its next transaction.
    ClientArrive {
        /// Client index.
        client: usize,
    },
    /// Continue executing a transaction on a replica.
    StepTxn {
        /// Replica index.
        replica: usize,
        /// Transaction.
        txn: TxnId,
    },
    /// A writeset reaches the certifier.
    CertifySend {
        /// Origin replica.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// The writeset.
        ws: Writeset,
        /// Certifier groups the writeset touches, as a bitmask computed at
        /// send time from the run's `CertMap` (`0` under the unified
        /// certifier). A single set bit certifies against one shard; more
        /// bits run the cross-group atomic-commitment round.
        groups: u64,
    },
    /// The certifier's response reaches the replica.
    CertifyReturn {
        /// Origin replica.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// Commit version, or `None` on conflict.
        version: Option<Version>,
    },
    /// A transaction finished on its replica (response travels to client).
    TxnComplete {
        /// Replica index.
        replica: usize,
        /// Transaction.
        txn: TxnId,
        /// Whether it committed (vs aborted).
        committed: bool,
    },
    /// A client re-submits an aborted transaction after observing the
    /// abort response (which travelled replica → balancer → client, two
    /// LAN hops after the completion). Keeping the resubmission a separate
    /// event — instead of the historical instantaneous retry inside the
    /// completion handler — both models the client round-trip faithfully
    /// and is what makes *every* `TxnComplete` single-replica: the earliest
    /// a retry can touch another replica is four hops after the original
    /// completion (two for the response, two for the new submission), the
    /// bound the parallel driver's lookahead horizon is built on.
    TxnRetry {
        /// Retrying client.
        client: usize,
        /// Transaction type (retries keep the original type).
        txn_type: TxnTypeId,
        /// Original arrival time (response-time accounting spans retries).
        arrived: SimTime,
        /// Retry count of the new submission.
        retries: u32,
    },
    /// Per-replica periodic work: background writer, propagation, daemon.
    Maintenance {
        /// Replica index.
        replica: usize,
        /// Round counter (daemon samples every other round).
        round: u64,
    },
    /// Load-balancer rebalance tick.
    LbTick,
    /// Switch the workload mix (dynamic-reconfiguration experiments).
    MixSwitch {
        /// Index into the experiment's mix list.
        mix: usize,
    },
    /// Freeze the balancer (static-configuration baseline).
    FreezeLb,
    /// A replica fails: cold cache, in-flight work dropped, clients retry
    /// elsewhere, the balancer routes around it. At least one replica must
    /// stay alive for dispatch to have a target.
    ReplicaCrash {
        /// Replica index.
        replica: usize,
    },
    /// A crashed replica rejoins: it replays the writesets it missed from
    /// the certifier's persistent log (§3 standard recovery), then re-enters
    /// dispatch with a cold cache.
    ReplicaRecover {
        /// Replica index.
        replica: usize,
    },
    /// Kill a certifier-group member. Killing the leader elects a backup
    /// after the failover delay; certification requests arriving in the gap
    /// wait for the new leader (§4.4). If *every* member of the group is
    /// dead, requests queue at the link and drain when a member restarts
    /// ([`Ev::CertifierRestart`]) — back-pressure, never spurious aborts.
    CertifierKill {
        /// Certifier group index (always `0` under the unified certifier).
        group: usize,
        /// Group member index (the initial leader is member 0).
        member: usize,
    },
    /// Restart a dead certifier-group member. If the group had no live
    /// members, the restarted member is elected leader after the failover
    /// delay and the requests queued during the outage drain through it in
    /// arrival order.
    CertifierRestart {
        /// Certifier group index (always `0` under the unified certifier).
        group: usize,
        /// Group member index.
        member: usize,
    },
    /// Under partial replication: copy a relation group onto one more live
    /// replica, backfilling its pages from the certifier's persistent log
    /// and widening dispatch eligibility. A no-op under full replication or
    /// when every live replica already holds the group. The crash handler
    /// re-replicates under-`min_copies` groups synchronously (so dispatch
    /// never lacks a holder); this event is the injectable form for
    /// scenarios and tests. Like every non-`StepTxn` event, the parallel
    /// driver treats it as a window barrier.
    Rereplicate {
        /// Relation-group index in the run's `PlacementMap`.
        group: usize,
    },
    /// One bandwidth-capped slice of an in-flight backfill: ship up to the
    /// chunk budget of certifier-log pages onto the task's target replica
    /// through its CPU/disk models, then self-schedule the next chunk (or
    /// the [`Ev::BackfillDone`]) at the time the cap allows. Staging the
    /// copy through the queue is what makes migration I/O compete with
    /// foreground propagation instead of being charged instantaneously.
    BackfillChunk {
        /// Index into the cluster's backfill-task table.
        task: usize,
    },
    /// An asynchronous backfill finished: the target replica's copy of the
    /// task's relations is complete, dispatch eligibility widens to include
    /// it, and — for a migration — the donor holder is dropped.
    BackfillDone {
        /// Index into the cluster's backfill-task table.
        task: usize,
    },
    /// Periodic skew-driven migration tick: examine per-relation-group
    /// dispatch load, and migrate the hottest group from its most-loaded
    /// holder toward the least-loaded non-holder (capped backfill, then the
    /// donor is dropped on completion). Scheduled only when
    /// `ClusterConfig::migration_period` is set under partial replication.
    RebalanceTick,
    /// Heartbeat round of the balancer's failure detector: ping every
    /// replica (probes pay LAN hops and briefly occupy the certifier-side
    /// NIC), feed the per-replica accrual counters, and apply any
    /// `Live → Suspected → Dead` transitions — a *Suspected* replica leaves
    /// dispatch/MALB eligibility and its in-flight transactions are retried
    /// on survivors; re-replication waits for *Dead*. Scheduled only when
    /// `ClusterConfig::heartbeat_period_us > 0`; self-reschedules each
    /// period.
    HeartbeatTick,
    /// Partition the link between `a` and `b` (either may be
    /// [`CONTROL_NODE`]): messages between the pair — heartbeats,
    /// certification traffic, propagation pulls — are dropped until
    /// `heal_at`, without killing either side. The handler schedules the
    /// matching [`Ev::LinkHeal`] itself.
    LinkPartition {
        /// One endpoint (replica index or [`CONTROL_NODE`]).
        a: usize,
        /// The other endpoint.
        b: usize,
        /// When the link heals.
        heal_at: SimTime,
    },
    /// Heal a partitioned link (scheduled by the `LinkPartition` handler).
    LinkHeal {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A client's per-request timer fired before the response arrived: the
    /// request is abandoned on its (possibly dead or partitioned) replica
    /// and retried after a capped exponential backoff through the usual
    /// [`Ev::TxnRetry`] path. Scheduled only when
    /// `ClusterConfig::client_timeout_us > 0`; a no-op if the transaction
    /// already completed.
    ClientTimeout {
        /// The timed-out transaction.
        txn: TxnId,
    },
    /// End of warm-up: reset the measurement window.
    EndWarmup,
    /// End of run.
    End,
}

impl Ev {
    /// Classifies the event by the replica-node state its handler touches
    /// (see [`Footprint`]). Mirrors the routing in
    /// [`crate::state::ClusterState::handle`]:
    ///
    /// * `StepTxn { replica }` runs `ClusterNode::on_step` — that node only.
    /// * `CertifySend { replica }` runs `CertifierLink::on_send` — certifier
    ///   state only; the scheduled `CertifyReturn` reaches `replica` at
    ///   least one LAN hop later (conflicts return after one hop, commits
    ///   after durability plus one hop).
    /// * `CertifyReturn { replica }` applies remote writesets and commits on
    ///   `replica` (or drops an orphan), scheduling a same-replica
    ///   `TxnComplete`.
    /// * `TxnComplete { replica }` frees the Gatekeeper slot on `replica`
    ///   (possibly starting its next queued transaction at the same
    ///   instant); the outcome travels to the client as a scheduled event —
    ///   the next arrival or a [`Ev::TxnRetry`] — two hops later, so the
    ///   handler itself touches no other replica.
    /// * `Maintenance { replica }` runs the background writer, propagation
    ///   pull, and load-daemon sample on `replica`.
    /// * `ClientArrive` and `TxnRetry` dispatch through the balancer, which
    ///   may pick any replica — but their immediate effects are
    ///   shard-invisible and the submitted transaction's first step fires
    ///   two hops later, so they are `Dispatch`, not `Global`.
    /// * Everything else (balancer ticks install filters that evict pool
    ///   pages, mix switches, faults, re-replication, run control) is
    ///   cross-cutting.
    pub fn footprint(&self) -> Footprint {
        match self {
            Ev::StepTxn { replica, .. }
            | Ev::CertifyReturn { replica, .. }
            | Ev::Maintenance { replica, .. }
            | Ev::TxnComplete { replica, .. } => Footprint::Replica(*replica),
            Ev::CertifySend {
                replica, groups, ..
            } => Footprint::Certifier {
                groups: *groups,
                origin: *replica,
            },
            // A client timeout only abandons coordinator-side transaction
            // metadata and releases balancer accounting; the earliest
            // shard-visible consequence is the retried submission's first
            // step, at least two hops out — the same contract as `TxnRetry`.
            Ev::ClientArrive { .. } | Ev::TxnRetry { .. } | Ev::ClientTimeout { .. } => {
                Footprint::Dispatch
            }
            Ev::LbTick
            | Ev::MixSwitch { .. }
            | Ev::FreezeLb
            | Ev::ReplicaCrash { .. }
            | Ev::ReplicaRecover { .. }
            | Ev::CertifierKill { .. }
            | Ev::CertifierRestart { .. }
            | Ev::Rereplicate { .. }
            | Ev::BackfillChunk { .. }
            | Ev::BackfillDone { .. }
            | Ev::RebalanceTick
            // Heartbeat rounds read every replica's liveness and may flip
            // dispatch eligibility cluster-wide; partitions change which
            // messages *any* handler may deliver. Both are rare control
            // events: a window barrier keeps them trivially bit-exact.
            | Ev::HeartbeatTick
            | Ev::LinkPartition { .. }
            | Ev::LinkHeal { .. }
            | Ev::EndWarmup
            | Ev::End => Footprint::Global,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_replica_events_have_replica_footprints() {
        let cases = [
            (
                Ev::StepTxn {
                    replica: 3,
                    txn: TxnId(1),
                },
                3,
            ),
            (
                Ev::CertifyReturn {
                    replica: 1,
                    txn: TxnId(2),
                    version: None,
                },
                1,
            ),
            (
                Ev::TxnComplete {
                    replica: 2,
                    txn: TxnId(3),
                    committed: true,
                },
                2,
            ),
            // An aborted completion only frees the slot; the retry travels
            // to the client as a separate `TxnRetry` event.
            (
                Ev::TxnComplete {
                    replica: 4,
                    txn: TxnId(8),
                    committed: false,
                },
                4,
            ),
            (
                Ev::Maintenance {
                    replica: 5,
                    round: 0,
                },
                5,
            ),
        ];
        for (ev, replica) in cases {
            assert_eq!(ev.footprint(), Footprint::Replica(replica), "{ev:?}");
        }
    }

    #[test]
    fn certify_send_is_certifier_only_with_an_origin() {
        let ws = Writeset::new(
            TxnId(9),
            tashkent_engine::TxnTypeId(0),
            tashkent_engine::Snapshot::at(Version(0)),
            Vec::new(),
        );
        let ev = Ev::CertifySend {
            replica: 4,
            txn: TxnId(9),
            ws: ws.clone(),
            groups: 0,
        };
        assert_eq!(
            ev.footprint(),
            Footprint::Certifier {
                groups: 0,
                origin: 4
            }
        );
        // Sharded: the touched-group mask rides on the footprint.
        let sharded = Ev::CertifySend {
            replica: 4,
            txn: TxnId(9),
            ws,
            groups: 0b101,
        };
        assert_eq!(
            sharded.footprint(),
            Footprint::Certifier {
                groups: 0b101,
                origin: 4
            }
        );
    }

    #[test]
    fn dispatch_events_defer_and_cross_cutting_events_are_global() {
        // Arrivals and retries dispatch anywhere, but only shard-invisible
        // state changes immediately: a two-hop all-shard barrier suffices.
        assert_eq!(
            Ev::ClientArrive { client: 0 }.footprint(),
            Footprint::Dispatch
        );
        assert_eq!(
            Ev::TxnRetry {
                client: 0,
                txn_type: TxnTypeId(0),
                arrived: SimTime::ZERO,
                retries: 1,
            }
            .footprint(),
            Footprint::Dispatch
        );
        // A timeout abandons coordinator-side metadata only; its retry is
        // at least two hops from any shard-visible effect.
        assert_eq!(
            Ev::ClientTimeout { txn: TxnId(7) }.footprint(),
            Footprint::Dispatch
        );
        let globals = [
            Ev::LbTick,
            Ev::MixSwitch { mix: 1 },
            Ev::FreezeLb,
            Ev::ReplicaCrash { replica: 0 },
            Ev::ReplicaRecover { replica: 0 },
            Ev::CertifierKill {
                group: 0,
                member: 0,
            },
            Ev::CertifierRestart {
                group: 0,
                member: 0,
            },
            Ev::Rereplicate { group: 0 },
            // Backfill chunks touch the target node's CPU/disk and the
            // completion/rebalance handlers change placement-wide
            // eligibility: all of them barrier a window, like LbTick.
            Ev::BackfillChunk { task: 0 },
            Ev::BackfillDone { task: 0 },
            Ev::RebalanceTick,
            // Detector rounds and partition changes flip cluster-wide
            // eligibility/reachability: window barriers.
            Ev::HeartbeatTick,
            Ev::LinkPartition {
                a: CONTROL_NODE,
                b: 1,
                heal_at: SimTime::from_secs(2),
            },
            Ev::LinkHeal {
                a: CONTROL_NODE,
                b: 1,
            },
            Ev::EndWarmup,
            Ev::End,
        ];
        for ev in globals {
            assert_eq!(ev.footprint(), Footprint::Global, "{ev:?}");
        }
    }

    #[test]
    fn node_demand_tracks_the_footprint_except_for_dispatch() {
        // Replica handlers demand their one node; the unified certifier
        // (groups mask 0) demands none; sharded certification demands the
        // touched shards home.
        assert_eq!(Footprint::Replica(3).demand(), NodeDemand::Node(3));
        assert_eq!(
            Footprint::Certifier {
                groups: 0,
                origin: 2
            }
            .demand(),
            NodeDemand::NoNode
        );
        assert_eq!(
            Footprint::Certifier {
                groups: 0b110,
                origin: 2
            }
            .demand(),
            NodeDemand::CertGroups(0b110)
        );
        // Dispatch defers like a two-hop barrier but admits onto a
        // balancer-chosen node the instant its handler runs — it must pull
        // every leased node home even though it never stops a window.
        assert_eq!(Footprint::Dispatch.demand(), NodeDemand::AllNodes);
        assert_eq!(Footprint::Global.demand(), NodeDemand::AllNodes);
    }
}
