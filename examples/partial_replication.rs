//! Partial replication walkthrough through the shared scenario harness.
//!
//! Runs the `partial-replication` scenario at smoke scale: each relation
//! group (the relation set one transaction type touches) lives on only
//! `min_copies` holder replicas, dispatch routes transactions only to
//! holders, and the certifier ships writeset pages only to holders —
//! non-holders receive bare version ticks. Mid-run a replica crashes; every
//! group it held drops below the durability constraint and is immediately
//! re-replicated onto a survivor via certifier-log backfill. The run prints
//! the placement map, the fault log, and the propagation bytes saved
//! against the full-replication (`min_copies = n`) baseline.
//!
//! ```sh
//! cargo run --release --example partial_replication
//! ```

use tashkent::cluster::{FaultKind, PartialReplication, Scenario, ScenarioKnobs, World};

fn main() {
    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 4,
        measured_secs: 40,
        ..ScenarioKnobs::smoke()
    };
    let scenario = PartialReplication::default();
    let min_copies = scenario.effective_min_copies(&knobs);
    println!(
        "partial replication: {} replicas, min_copies = {min_copies}",
        knobs.replicas
    );

    // Peek at the placement the planner computes before running: build the
    // world the scenario describes and print group → holders.
    let exp = scenario.experiment(&knobs);
    let world = World::with_driver(
        exp.config,
        exp.workload,
        vec![exp.phases[0].1.clone()],
        exp.driver,
    );
    let p = world.placement().expect("partial run has a placement");
    println!("\nplacement map ({} relation groups):", p.group_count());
    for (g, group) in p.groups().iter().enumerate() {
        let types: Vec<String> = group
            .types
            .iter()
            .map(|t| world.workload().type_name(*t).to_string())
            .collect();
        println!(
            "  group {g:>2}: {:>6} pages on replicas {:?}  ({})",
            group.pages,
            p.holders(g),
            types.join(", ")
        );
    }
    for r in 0..knobs.replicas {
        println!(
            "  replica {r}: holds {:>6} pages across {} relations",
            p.held_pages(r),
            p.held_relations(r).len()
        );
    }

    // Run the scenario (crash + re-replication + recovery included).
    let result = scenario
        .run(&knobs)
        .expect("partial-replication scenario runs to its End event");
    println!("\nfault log:");
    for f in &result.faults {
        let label = match f.kind {
            FaultKind::ReplicaCrash(r) => format!("replica {r} crashed (cold cache)"),
            FaultKind::ReplicaRecover(r) => {
                format!("replica {r} replayed its held groups and rejoined")
            }
            FaultKind::CertifierFailover { group, leader } => {
                format!("certifier group {group} failed over to member {leader}")
            }
            FaultKind::Rereplicate { group, to, bytes } => format!(
                "group {group} dropped below {min_copies} live holders -> backfilled onto replica {to} ({bytes} B)"
            ),
            FaultKind::Migrate { group, from, to, bytes } => {
                format!("group {group} migrated from replica {from} to {to} ({bytes} B)")
            }
            FaultKind::ShrinkHolder { group, from } => {
                format!("group {group} shed surplus holder {from} after recovery")
            }
            FaultKind::ReplicaSuspected(r) => format!("replica {r} suspected by the detector"),
            FaultKind::ReplicaDead(r) => format!("replica {r} declared dead by the detector"),
            FaultKind::ReplicaTrusted(r) => format!("replica {r} trusted again"),
            FaultKind::Partition { a, b } => format!("link {a}<->{b} partitioned"),
            FaultKind::PartitionHealed { a, b } => format!("link {a}<->{b} healed"),
        };
        println!("  {:>5.1}s  {label}", f.at.as_secs_f64());
    }

    // Propagation traffic vs the full-replication degenerate case.
    let full = scenario
        .run(&knobs.clone().with_min_copies(Some(knobs.replicas)))
        .expect("full-replication baseline runs to its End event");
    let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
    println!("\npropagation traffic over the measured window:");
    println!(
        "  min_copies = {min_copies}: {:>8.2} MB shipped, {:>8.2} MB withheld from non-holders",
        mb(result.propagated_ws_bytes),
        mb(result.filtered_ws_bytes)
    );
    println!(
        "  min_copies = {} (full): {:>8.2} MB shipped, {:>8.2} MB withheld",
        knobs.replicas,
        mb(full.propagated_ws_bytes),
        mb(full.filtered_ws_bytes)
    );
    println!(
        "\n{} committed, {} aborted; mean response {:.0} ms; throughput {:.1} tps",
        result.committed,
        result.aborts,
        result.mean_response_s * 1e3,
        result.tps
    );
    assert!(
        result.propagated_ws_bytes < full.propagated_ws_bytes,
        "partial replication must ship strictly fewer bytes than full"
    );
    println!("check: partial shipped strictly fewer bytes than full replication ✓");
}
