//! Fault tolerance walkthrough through the shared scenario harness.
//!
//! Runs the `failover` scenario at smoke scale: mid-run a replica crashes
//! (cold cache, in-flight work dropped, its clients retry on the
//! survivors), later recovers by replaying the certifier's persistent log,
//! and rejoins dispatch; after that the certifier leader is killed and a
//! backup takes over. The run prints the fault log, the throughput time
//! series around the faults, and the end-of-run consistency picture.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use tashkent::cluster::{Ev, Failover, FaultKind, Scenario, ScenarioKnobs, World};
use tashkent::sim::SimTime;

fn main() {
    // Enough measured window for the crash/outage/recovery plateaus to be
    // visible in 5 s buckets.
    let knobs = ScenarioKnobs {
        replicas: 3,
        clients_per_replica: 4,
        measured_secs: 60,
        ..ScenarioKnobs::smoke()
    };
    let scenario = Failover::default();
    let sched = Failover::schedule(&knobs);
    println!(
        "failover scenario: {} replicas, crash at {}s, recover at {}s, leader kill at {}s",
        knobs.replicas, sched.crash_at_secs, sched.recover_at_secs, sched.leader_kill_at_secs
    );

    let result = scenario
        .run(&knobs)
        .expect("failover scenario runs to its End event");

    println!("\nfault log:");
    for f in &result.faults {
        let label = match f.kind {
            FaultKind::ReplicaCrash(r) => format!("replica {r} crashed (cold cache)"),
            FaultKind::ReplicaRecover(r) => {
                format!("replica {r} replayed the certifier log and rejoined")
            }
            FaultKind::CertifierFailover { group, leader } => {
                format!("certifier group {group} leader died; member {leader} elected after 200 ms")
            }
            FaultKind::Rereplicate { group, to, bytes } => {
                format!("relation group {group} re-replicated onto replica {to} ({bytes} B)")
            }
            FaultKind::Migrate {
                group,
                from,
                to,
                bytes,
            } => {
                format!("relation group {group} migrated from replica {from} to {to} ({bytes} B)")
            }
            FaultKind::ShrinkHolder { group, from } => {
                format!("relation group {group} shed surplus holder {from}")
            }
            FaultKind::ReplicaSuspected(r) => format!("replica {r} suspected by the detector"),
            FaultKind::ReplicaDead(r) => format!("replica {r} declared dead by the detector"),
            FaultKind::ReplicaTrusted(r) => format!("replica {r} trusted again"),
            FaultKind::Partition { a, b } => format!("link {a}<->{b} partitioned"),
            FaultKind::PartitionHealed { a, b } => format!("link {a}<->{b} healed"),
        };
        println!("  {:>5.1}s  {label}", f.at.as_secs_f64());
    }

    println!("\nthroughput (5 s buckets):");
    for (t, tps) in result.timeseries(5.0) {
        let bar = "#".repeat((tps * 2.0).round() as usize);
        println!("  {t:>5.0}s {tps:>6.1} {bar}");
    }
    println!(
        "\n{} committed, {} aborted, {} gave up; mean response {:.0} ms",
        result.committed,
        result.aborts,
        result.retries_exhausted,
        result.mean_response_s * 1e3
    );

    // The same faults, injected by hand through a World — the low-level
    // interface the scenario wraps — stopping right after recovery to
    // inspect the log-replay invariant: the recovered replica has applied
    // exactly the certifier's version.
    let exp = scenario.experiment(&knobs);
    let mut world = World::new(exp.config, exp.workload, vec![exp.phases[0].1.clone()]);
    world.prime();
    let victim = knobs.replicas - 1;
    world.schedule(SimTime::from_secs(5), Ev::ReplicaCrash { replica: victim });
    world.schedule(
        SimTime::from_secs(8),
        Ev::ReplicaRecover { replica: victim },
    );
    world.schedule(SimTime::from_secs(8), Ev::End);
    world.run_to_end().expect("End event scheduled");
    assert_eq!(
        world.replica(victim).applied(),
        world.certifier().version(),
        "recovery must catch the replica up to the certifier log"
    );
    println!(
        "\nlow-level check: recovered replica applied v{} == certifier v{} ✓",
        world.replica(victim).applied().0,
        world.certifier().version().0
    );
}
