//! Fault tolerance walkthrough: replica crash and recovery, certifier
//! failover, and load-balancer soft state.
//!
//! Exercises the availability machinery outside the throughput experiments:
//! a replica crashes (cold cache, lost in-flight work), recovers from the
//! certifier's persistent log, and rejoins dispatch; the certifier group
//! elects a backup when its leader dies.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use tashkent::certifier::{Certifier, CertifierGroup, CertifyOutcome};
use tashkent::core::{LoadBalancer, ReplicaId};
use tashkent::engine::{Snapshot, TxnId, TxnTypeId, Version, Writeset, WritesetItem};
use tashkent::replica::{ReplicaConfig, ReplicaNode};
use tashkent::sim::{SimRng, SimTime};
use tashkent::storage::Catalog;

fn main() {
    // A miniature schema and one replica.
    let mut catalog = Catalog::new();
    let t = catalog.add_table("accounts", 64, 6_400);
    let mut replica = ReplicaNode::new(catalog, ReplicaConfig::default(), SimRng::seed_from(7));
    let mut certifier = Certifier::default();

    // Commit a few updates through the certifier and apply them.
    for i in 0..30u64 {
        let ws = Writeset::new(
            TxnId(i),
            TxnTypeId(0),
            Snapshot::at(Version(i)),
            vec![WritesetItem { rel: t, row: i * 7 }],
        );
        match certifier.certify(SimTime::from_millis(i), ws) {
            CertifyOutcome::Committed { .. } => {}
            CertifyOutcome::Conflict => unreachable!("disjoint rows"),
        }
    }
    replica.apply_writesets(SimTime::from_secs(1), certifier.writesets_since(Version(0)));
    println!("replica applied to {}", replica.applied());

    // Crash: cold cache, in-flight work dropped.
    let dropped = replica.crash();
    println!(
        "crash: {} in-flight transactions dropped, cache cold",
        dropped.len()
    );

    // Standard recovery from the certifier's persistent log (§3).
    replica.recover(Version(10));
    let missed = certifier.writesets_since(replica.applied());
    println!(
        "recovery: {} writesets to replay from the persistent log",
        missed.len()
    );
    replica.apply_writesets(SimTime::from_secs(2), missed);
    assert_eq!(replica.applied(), certifier.version());
    println!("replica caught up to {}", replica.applied());

    // Certifier group: leader + two backups (§4.4).
    let mut group = CertifierGroup::paper_default();
    let ev = group.kill(SimTime::from_secs(3), 0);
    println!("certifier leader killed → {ev:?}");
    assert!(group.is_available());

    // Balancer soft state: a failed replica leaves dispatch, then rejoins.
    let mut lb = LoadBalancer::least_connections(3);
    lb.replica_failed(ReplicaId(1));
    let choices: Vec<usize> = (0..6).map(|_| lb.dispatch(TxnTypeId(0)).0).collect();
    assert!(!choices.contains(&1));
    lb.replica_recovered(ReplicaId(1));
    println!("balancer skipped the dead replica and resumed after recovery: {choices:?}");
}
