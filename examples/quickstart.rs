//! Quickstart: run a small replicated cluster under each load-balancing
//! policy and compare throughput, all through the scenario registry.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tashkent::prelude::*;

fn main() {
    // The TPC-W steady-state scenario from the shared registry: a small
    // bookstore database with the ordering mix (50 % updates).
    let tpcw = scenario("tpcw-steady-state").expect("registered scenario");
    println!("scenario: {} — {}\n", tpcw.name(), tpcw.summary());

    for policy in [
        PolicySpec::RoundRobin,
        PolicySpec::LeastConnections,
        PolicySpec::Lard,
        PolicySpec::malb_sc(),
        PolicySpec::malb_sc_uf(),
    ] {
        // An 8-replica cluster at 512 MB per replica.
        let knobs = ScenarioKnobs {
            replicas: 8,
            clients_per_replica: 8,
            warmup_secs: 20,
            measured_secs: 60,
            ..ScenarioKnobs::default()
        }
        .with_policy(policy);
        let result = tpcw.run(&knobs).expect("scenario runs to its End event");
        println!(
            "{:<18} {:>7.1} tps  {:>6.0} ms mean response  {:>5.1} KB read/txn",
            policy.label(),
            result.tps,
            result.mean_response_s * 1e3,
            result.read_kb_per_txn,
        );
        for g in &result.assignments {
            println!("    group {:?} on {} replica(s)", g.types, g.replicas);
        }
    }
}
