//! Quickstart: run a small replicated cluster under each load-balancing
//! policy and compare throughput.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tashkent::prelude::*;

fn main() {
    // An 8-replica cluster at 512 MB per replica, on a small TPC-W database
    // with the ordering mix (50 % updates).
    let (workload, mix) = tpcw::workload_with_mix(tpcw::TpcwScale::Small, "ordering");
    println!(
        "workload: {} ({:.2} GB, {} transaction types), mix: {} ({:.0}% updates)\n",
        workload.name,
        workload.db_bytes() as f64 / (1 << 30) as f64,
        workload.types.len(),
        mix.name,
        100.0 * mix.update_fraction(&workload),
    );

    for policy in [
        PolicySpec::RoundRobin,
        PolicySpec::LeastConnections,
        PolicySpec::Lard,
        PolicySpec::malb_sc(),
        PolicySpec::malb_sc_uf(),
    ] {
        let config = ClusterConfig {
            replicas: 8,
            clients: 64,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy);
        let result = run(Experiment::new(config, workload.clone(), mix.clone()).with_window(20, 60));
        println!(
            "{:<18} {:>7.1} tps  {:>6.0} ms mean response  {:>5.1} KB read/txn",
            policy.label(),
            result.tps,
            result.mean_response_s * 1e3,
            result.read_kb_per_txn,
        );
        for g in &result.assignments {
            println!("    group {:?} on {} replica(s)", g.types, g.replicas);
        }
    }
}
