//! Run tracing walkthrough: records the `failover` scenario's full
//! transaction lifecycle and writes both trace artifacts —
//! `trace_failover.jsonl` (schema-stable JSONL, one event per line) and
//! `trace_failover.jsonl.chrome.json` (Chrome `trace_event` format; open
//! chrome://tracing or <https://ui.perfetto.dev> and load the file to see
//! per-replica execution tracks, certifier-group decision tracks, and
//! utilization counters around the injected crash and failover).
//!
//! ```sh
//! cargo run --release --example trace_run
//! ```
//!
//! The same artifacts come out of any entry point via the `TASHKENT_TRACE`
//! environment variable, e.g.
//! `TASHKENT_TRACE=run.jsonl cargo run --release --example failover`.

use tashkent::cluster::{Failover, Scenario, ScenarioKnobs};

fn main() {
    let base = "trace_failover.jsonl";
    let knobs = ScenarioKnobs {
        replicas: 3,
        clients_per_replica: 4,
        measured_secs: 60,
        ..ScenarioKnobs::smoke()
    }
    .with_trace(base);

    println!(
        "tracing the failover scenario ({} replicas)...",
        knobs.replicas
    );
    let result = Failover::default()
        .run(&knobs)
        .expect("failover scenario runs to its End event");

    let summary = result
        .trace_summary
        .expect("tracing was enabled, so the result carries a summary");
    println!(
        "\n{} committed, {} aborted; {} trace events recorded ({} emitted, {} dropped)",
        result.committed, result.aborts, summary.recorded, summary.emitted, summary.dropped
    );
    println!("\nevents by kind:");
    for (kind, n) in &summary.by_kind {
        if *n > 0 {
            println!("  {kind:<16} {n}");
        }
    }

    println!("\nwrote {base} (JSONL; one event per line, `k` field is the kind)");
    println!("wrote {base}.chrome.json (load in chrome://tracing or ui.perfetto.dev)");
}
