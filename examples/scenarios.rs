//! Scenario catalog: list every registered scenario and run each at smoke
//! scale through the shared harness.
//!
//! ```sh
//! cargo run --release --example scenarios
//! ```

use tashkent::prelude::*;

fn main() {
    let scenarios = registry();
    println!("{} registered scenarios:\n", scenarios.len());
    for s in &scenarios {
        println!("  {:<20} {}", s.name(), s.summary());
    }

    let knobs = ScenarioKnobs {
        replicas: 4,
        clients_per_replica: 5,
        warmup_secs: 10,
        measured_secs: 45,
        ..ScenarioKnobs::default()
    };
    println!(
        "\nrunning each at {} replicas x {} clients, {} s measured:\n",
        knobs.replicas,
        knobs.replicas * knobs.clients_per_replica,
        knobs.measured_secs
    );
    for s in &scenarios {
        let r = s.run(&knobs).expect("scenario runs to its End event");
        println!(
            "  {:<20} {:>7.1} tps  {:>6.0} ms mean response  {:>4} groups  {:>5.1}% aborts",
            s.name(),
            r.tps,
            r.mean_response_s * 1e3,
            r.assignments.len(),
            100.0 * r.abort_fraction(),
        );
    }
}
