//! Working-set estimation walkthrough: the exact §2.2/§4.2.2 pipeline.
//!
//! For every TPC-W transaction type this prints the `EXPLAIN` output the
//! load balancer sees, the relation sizes it reads from the catalog, and
//! the resulting working-set estimates under the three MALB modes —
//! then packs the types into groups for a 512 MB replica.
//!
//! ```sh
//! cargo run --release --example estimate_working_sets
//! ```

use tashkent::core::{pack_groups, EstimationMode, WorkingSetEstimator};
use tashkent::storage::PAGE_SIZE;
use tashkent::workloads::tpcw::{self, TpcwScale};

fn main() {
    let workload = tpcw::workload(TpcwScale::Mid);
    let estimator = WorkingSetEstimator::new(&workload.catalog);
    let mb = |pages: u64| pages * PAGE_SIZE / (1 << 20);

    println!(
        "TPC-W MidDB: {} relations, {} total MB\n",
        workload.catalog.len(),
        mb(workload.catalog.total_pages())
    );
    println!("{:<12} {:>8} {:>8}  explain", "type", "SC MB", "SCAP MB");

    let mut sets = Vec::new();
    for t in &workload.types {
        let explain = workload.explain(t.id);
        let ws = estimator.estimate(t.id, &explain);
        println!(
            "{:<12} {:>8} {:>8}  {}",
            t.name,
            mb(ws.pages_for(EstimationMode::SizeContent)),
            mb(ws.pages_for(EstimationMode::SizeContentAccessPattern)),
            explain
                .steps
                .iter()
                .map(|s| s.relation.as_str())
                .collect::<Vec<_>>()
                .join(","),
        );
        sets.push(ws);
    }

    // Pack for a 512 MB replica with the paper's 70 MB overhead.
    let capacity = (512 - 70) * (1 << 20) / PAGE_SIZE;
    println!("\nbin packing at {} MB capacity:", mb(capacity));
    for mode in [
        EstimationMode::Size,
        EstimationMode::SizeContent,
        EstimationMode::SizeContentAccessPattern,
    ] {
        let groups = pack_groups(&sets, mode, capacity);
        println!("\n  {mode:?}: {} groups", groups.len());
        for g in &groups {
            let names: Vec<&str> = g.types.iter().map(|t| workload.type_name(*t)).collect();
            println!(
                "    [{}] {} MB{}",
                names.join(", "),
                mb(g.estimate_pages),
                if g.overflow { " (overflow)" } else { "" }
            );
        }
    }
}
