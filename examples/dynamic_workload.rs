//! Dynamic reconfiguration: switch the workload mix mid-run and watch MALB
//! re-allocate replicas (the Figure 6 experiment at example scale).
//!
//! ```sh
//! cargo run --release --example dynamic_workload
//! ```

use tashkent::cluster::{run, ClusterConfig, Experiment, PolicySpec};
use tashkent::workloads::tpcw::{self, TpcwScale};

fn main() {
    let (workload, shopping) = tpcw::workload_with_mix(TpcwScale::Small, "shopping");
    let (_, browsing) = tpcw::workload_with_mix(TpcwScale::Small, "browsing");

    let config = ClusterConfig {
        replicas: 8,
        clients: 56,
        ..ClusterConfig::paper_default()
    }
    .with_policy(PolicySpec::malb_sc());

    // Three phases: shopping → browsing → shopping.
    let exp = Experiment {
        config,
        workload,
        phases: vec![
            (100, shopping.clone()),
            (80, browsing),
            (80, shopping),
        ],
        warmup_secs: 20,
        freeze_at_secs: None,
    };
    let result = run(exp);

    println!("throughput over time (10 s buckets):");
    for (t, tps) in result.timeseries(10.0) {
        let bar = "#".repeat(tps.round() as usize / 2);
        println!("{t:>6.0}s {tps:>7.1} {bar}");
    }
    println!("\nfinal groups:");
    for g in &result.assignments {
        println!("  {:?} x{} (load {:.2})", g.types, g.replicas, g.load);
    }
    println!(
        "\nlb activity: {} moves, {} merges, {} splits, {} fast re-allocations",
        result.lb.moves, result.lb.merges, result.lb.splits, result.lb.fast_reallocs
    );
}
