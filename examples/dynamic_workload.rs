//! Dynamic reconfiguration: switch the workload mix mid-run and watch MALB
//! re-allocate replicas (the Figure 6 experiment at example scale), via the
//! `dynamic-reconfig` scenario from the shared registry.
//!
//! ```sh
//! cargo run --release --example dynamic_workload
//! ```

use tashkent::prelude::*;

fn main() {
    let scenario = scenario("dynamic-reconfig").expect("registered scenario");
    println!("scenario: {} — {}\n", scenario.name(), scenario.summary());

    // Three phases: shopping → browsing → shopping, 80 s each, on an
    // 8-replica cluster.
    let knobs = ScenarioKnobs {
        replicas: 8,
        clients_per_replica: 7,
        warmup_secs: 20,
        measured_secs: 240,
        ..ScenarioKnobs::default()
    };
    let result = scenario
        .run(&knobs)
        .expect("scenario runs to its End event");

    println!("throughput over time (10 s buckets):");
    for (t, tps) in result.timeseries(10.0) {
        let bar = "#".repeat(tps.round() as usize / 2);
        println!("{t:>6.0}s {tps:>7.1} {bar}");
    }
    println!("\nfinal groups:");
    for g in &result.assignments {
        println!("  {:?} x{} (load {:.2})", g.types, g.replicas, g.load);
    }
    println!(
        "\nlb activity: {} moves, {} merges, {} splits, {} fast re-allocations",
        result.lb.moves, result.lb.merges, result.lb.splits, result.lb.fast_reallocs
    );
}
