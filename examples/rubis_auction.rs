//! RUBiS auction-site scenario: the bidding mix with the `AboutMe` whale.
//!
//! RUBiS's `AboutMe` transaction reads from almost every table; this
//! example runs the `rubis-auction` scenario from the shared registry to
//! show how MALB isolates it onto its own replicas while the
//! connection-counting baseline lets it pollute every cache.
//!
//! ```sh
//! cargo run --release --example rubis_auction
//! ```

use tashkent::prelude::*;

fn main() {
    let rubis = scenario("rubis-auction").expect("registered scenario");
    println!("scenario: {} — {}\n", rubis.name(), rubis.summary());

    for policy in [PolicySpec::LeastConnections, PolicySpec::malb_sc()] {
        let knobs = ScenarioKnobs {
            replicas: 8,
            clients_per_replica: 7,
            warmup_secs: 30,
            measured_secs: 90,
            ..ScenarioKnobs::default()
        }
        .with_policy(policy);
        let r = rubis.run(&knobs).expect("scenario runs to its End event");
        println!(
            "{:<18} {:>7.1} tps  read/txn {:>5.0} KB  mean resp {:>5.0} ms",
            policy.label(),
            r.tps,
            r.read_kb_per_txn,
            r.mean_response_s * 1e3
        );
        if let Some(aboutme) = r
            .assignments
            .iter()
            .find(|g| g.types.iter().any(|t| t == "AboutMe"))
        {
            println!(
                "    AboutMe group: {:?} on {} replicas",
                aboutme.types, aboutme.replicas
            );
        }
    }
}
