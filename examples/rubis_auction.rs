//! RUBiS auction-site scenario: the bidding mix with the `AboutMe` whale.
//!
//! RUBiS's `AboutMe` transaction reads from almost every table; this
//! example shows how MALB isolates it onto its own replicas while the
//! connection-counting baseline lets it pollute every cache.
//!
//! ```sh
//! cargo run --release --example rubis_auction
//! ```

use tashkent::cluster::{run, ClusterConfig, Experiment, PolicySpec};
use tashkent::workloads::rubis;

fn main() {
    let (workload, mix) = rubis::workload_with_mix("bidding");
    println!(
        "RUBiS: {:.2} GB, {} types; bidding mix {:.0}% updates\n",
        workload.db_bytes() as f64 / (1 << 30) as f64,
        workload.types.len(),
        100.0 * mix.update_fraction(&workload)
    );

    for policy in [PolicySpec::LeastConnections, PolicySpec::malb_sc()] {
        let config = ClusterConfig {
            replicas: 8,
            clients: 56,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy);
        let r = run(Experiment::new(config, workload.clone(), mix.clone()).with_window(30, 90));
        println!(
            "{:<18} {:>7.1} tps  read/txn {:>5.0} KB  mean resp {:>5.0} ms",
            policy.label(),
            r.tps,
            r.read_kb_per_txn,
            r.mean_response_s * 1e3
        );
        if let Some(aboutme) = r
            .assignments
            .iter()
            .find(|g| g.types.iter().any(|t| t == "AboutMe"))
        {
            println!(
                "    AboutMe group: {:?} on {} replicas",
                aboutme.types, aboutme.replicas
            );
        }
    }
}
