//! Update filtering: each replica only receives writesets for the tables
//! its transaction group uses (§3).
//!
//! Runs MALB-SC with and without filtering and reports the filtered
//! writeset volume and disk-write reduction.
//!
//! ```sh
//! cargo run --release --example update_filtering
//! ```

use tashkent::cluster::{run, ClusterConfig, Experiment, PolicySpec};
use tashkent::workloads::tpcw::{self, TpcwScale};

fn main() {
    let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");

    let mut results = Vec::new();
    for policy in [PolicySpec::malb_sc(), PolicySpec::malb_sc_uf()] {
        let config = ClusterConfig {
            replicas: 8,
            clients: 56,
            stable_rounds_for_filter: 5,
            ..ClusterConfig::paper_default()
        }
        .with_policy(policy);
        let r = run(Experiment::new(config, workload.clone(), mix.clone()).with_window(40, 120))
            .expect("scenario runs to its End event");
        println!(
            "{:<14} {:>7.1} tps  write/txn {:>5.1} KB  read/txn {:>5.1} KB  filters installed: {}",
            policy.label(),
            r.tps,
            r.write_kb_per_txn,
            r.read_kb_per_txn,
            r.lb.filters_installed
        );
        results.push(r);
    }
    let (base, filtered) = (&results[0], &results[1]);
    println!(
        "\nfiltering changed writes by {:+.0}% and reads by {:+.0}% \
         (paper at MidDB/512MB: writes −25%, reads −10%)",
        100.0 * (filtered.write_kb_per_txn / base.write_kb_per_txn.max(1e-9) - 1.0),
        100.0 * (filtered.read_kb_per_txn / base.read_kb_per_txn.max(1e-9) - 1.0),
    );
}
