//! # Tashkent+ — memory-aware load balancing and update filtering
//!
//! A full reproduction of *"Tashkent+: Memory-Aware Load Balancing and
//! Update Filtering in Replicated Databases"* (Elnikety, Dropsho,
//! Zwaenepoel, EuroSys 2007) as a deterministic discrete-event simulation.
//!
//! The paper's contribution — the MALB load balancer and update filtering —
//! lives in [`tashkent_core`]; every substrate it needs (storage,
//! execution engine, certifier, replica middleware, workloads, and the
//! whole-cluster simulation) is implemented in the sibling crates and
//! re-exported here.
//!
//! # Examples
//!
//! ```
//! use tashkent::cluster::{run, ClusterConfig, Experiment, PolicySpec};
//! use tashkent::workloads::tpcw::{self, TpcwScale};
//!
//! // A small MALB-SC cluster on the TPC-W ordering mix.
//! let (workload, mix) = tpcw::workload_with_mix(TpcwScale::Small, "ordering");
//! let config = ClusterConfig {
//!     replicas: 2,
//!     clients: 8,
//!     ..ClusterConfig::paper_default()
//! }
//! .with_policy(PolicySpec::malb_sc());
//! let result = run(Experiment::new(config, workload, mix).with_window(5, 20))
//!     .expect("experiment schedules an End event");
//! assert!(result.tps > 0.0);
//! ```
//!
//! The same run through the scenario registry — the shared harness every
//! example, integration test, and bench figure uses:
//!
//! ```
//! use tashkent::cluster::{run_scenario, PolicySpec, ScenarioKnobs};
//!
//! let knobs = ScenarioKnobs::smoke().with_policy(PolicySpec::malb_sc());
//! let result = run_scenario("tpcw-steady-state", &knobs).expect("scenario runs to its End event");
//! assert!(result.tps > 0.0);
//! ```
//!
//! Runs are driver-independent: the windowed multi-threaded
//! [`cluster::ParallelDriver`] produces bit-identical results to the
//! sequential reference driver, only faster on multi-core hosts:
//!
//! ```
//! use tashkent::cluster::{run_scenario, DriverKind, ScenarioKnobs};
//!
//! let knobs = ScenarioKnobs::smoke();
//! let sequential = run_scenario("tpcw-steady-state", &knobs).unwrap();
//! let parallel = run_scenario(
//!     "tpcw-steady-state",
//!     &knobs.clone().with_driver(DriverKind::Parallel { threads: 2 }),
//! )
//! .unwrap();
//! assert_eq!(sequential.committed, parallel.committed);
//! ```

/// The discrete-event simulation kernel (time, events, RNG, statistics).
pub use tashkent_sim as sim;

/// Storage substrate: catalog, buffer pool, disk model, background writer.
pub use tashkent_storage as storage;

/// Transaction engine: plans, EXPLAIN, executor, snapshots, writesets.
pub use tashkent_engine as engine;

/// The replicated certifier: GSI certification, commit log, propagation.
pub use tashkent_certifier as certifier;

/// Replica node: proxy, Gatekeeper, writeset application, load daemon.
pub use tashkent_replica as replica;

/// ★ The paper's contribution: MALB policies, working-set estimation, bin
/// packing, dynamic allocation, and update-filtering control.
pub use tashkent_core as core;

/// TPC-W and RUBiS workload models.
pub use tashkent_workloads as workloads;

/// Whole-cluster simulation and the experiment runner.
pub use tashkent_cluster as cluster;

/// Commonly used types, re-exported flat.
pub mod prelude {
    pub use tashkent_cluster::{
        calibrate_standalone, registry, run, run_scenario, scenario, ClusterConfig, DriverKind, Ev,
        Experiment, Failover, FailoverSchedule, FaultEvent, FaultKind, PartialReplication,
        PlacementMap, PlacementSpec, PolicySpec, ReplicationPlanner, RunError, RunResult, Scenario,
        ScenarioKnobs, World,
    };
    pub use tashkent_core::{EstimationMode, LoadBalancer, MalbConfig, WorkingSetEstimator};
    pub use tashkent_engine::{TxnTypeId, Version};
    pub use tashkent_sim::{SimRng, SimTime};
    pub use tashkent_workloads::{rubis, tpcw, Mix, Workload};
}
